package drift

import (
	"sync"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
)

// IndexView is what the watcher needs from the watched index: the
// planning entry point plus the shape numbers for the advisor's column
// profile. Both core.Index and core.Synced satisfy it; with Synced the
// watcher plans under the shared lock while queries keep running.
type IndexView[V comparable] interface {
	PlanReencode(predicates [][]V, weights []int, searchOpt *encoding.SearchOptions) (*core.ReencodePlan[V], error)
	K() int
	Len() int
	Cardinality() int
}

// Config tunes a Watcher. The zero value is usable: every field has a
// default.
type Config struct {
	// Interval between background runs (default 10s).
	Interval time.Duration
	// MinCount is the sketch-count floor for a predicate to enter the
	// planned workload, filtering one-off ad-hoc queries (default 1:
	// everything retained by the sketch).
	MinCount uint64
	// ScoreThreshold is the rolling drift score above which the watcher
	// emits a structured-log warning, edge-triggered on the crossing
	// (default 0.25).
	ScoreThreshold float64
	// Ordered marks the watched column as totally ordered for the
	// advisor's column profile.
	Ordered bool
	// Search tunes the re-encoding search (nil for defaults; the
	// default seed makes planning deterministic, so a watcher report
	// and an offline PlanReencode over the same captured workload agree
	// exactly).
	Search *encoding.SearchOptions
	// PageSize and Degree parameterize the advisor's B-tree candidate
	// (0 for the paper's 4096/512).
	PageSize int
	Degree   int
	// Logger receives the threshold events (nil for obs.DefaultLogger).
	Logger *obs.Logger
	// Apply turns the watcher from report-only into self-tuning: when a
	// run's drift score is at or above ScoreThreshold and the plan's
	// gain is at least MinGain, the watcher applies the plan live
	// through the index's Reencoder interface (core.Synced's
	// zero-downtime shadow rebuild + epoch flip). Applies are
	// edge-triggered — a successful apply resets the recorder, so the
	// score collapses to zero until drift genuinely re-accumulates —
	// and rate-limited by ApplyCooldown. Ignored when the watched index
	// does not implement Reencoder.
	Apply bool
	// MinGain is the minimum per-evaluation vector-read saving a plan
	// must show before Apply acts on it (default 1).
	MinGain int
	// ApplyCooldown is the minimum time between two applies (default
	// 1m), bounding rebuild churn under oscillating workloads.
	ApplyCooldown time.Duration
}

// Reencoder is the apply half of live adaptive re-encoding: an index
// that can swap its encoding while serving reads. core.Synced
// implements it with a background shadow rebuild, catch-up replay, and
// an atomic epoch flip.
type Reencoder[V comparable] interface {
	Reencode(newMapping *encoding.Mapping[V]) error
}

// DefaultInterval is the background run period when Config.Interval is
// unset.
const DefaultInterval = 10 * time.Second

// DefaultScoreThreshold is the drift-score warning level when
// Config.ScoreThreshold is unset.
const DefaultScoreThreshold = 0.25

// DefaultApplyCooldown is the minimum spacing between live applies when
// Config.ApplyCooldown is unset.
const DefaultApplyCooldown = time.Minute

// PlanReport is the published summary of a core.ReencodePlan.
type PlanReport struct {
	Predicates           int `json:"predicates"`
	CurrentCost          int `json:"current_cost"`
	NewCost              int `json:"new_cost"`
	Gain                 int `json:"gain"`
	BreakEvenEvaluations int `json:"break_even_evaluations"`
	RebuildVectors       int `json:"rebuild_vectors"`
	ProposedK            int `json:"proposed_k"`
}

// AdviceReport is the published summary of an advisor.Recommendation.
type AdviceReport struct {
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
}

// ApplyReport records the most recent live re-encoding the watcher
// applied (or attempted).
type ApplyReport struct {
	Time      time.Time `json:"time"`
	Gain      int       `json:"gain"`
	NewCost   int       `json:"new_cost"`
	ProposedK int       `json:"proposed_k"`
	Error     string    `json:"error,omitempty"`
}

// Report is one watcher run's published state — the /debug/drift
// payload under the watcher's name.
type Report struct {
	Name           string          `json:"name"`
	Time           time.Time       `json:"time"`
	Runs           uint64          `json:"runs"`
	Observed       uint64          `json:"observed"`
	DriftScore     float64         `json:"drift_score"`
	SketchCapacity int             `json:"sketch_capacity"`
	SketchErrBound uint64          `json:"sketch_err_bound"`
	TopPredicates  []obs.TopKEntry `json:"top_predicates,omitempty"`
	Plan           *PlanReport     `json:"plan,omitempty"`
	Advice         *AdviceReport   `json:"advice,omitempty"`
	Applies        uint64          `json:"applies,omitempty"`
	LastApply      *ApplyReport    `json:"last_apply,omitempty"`
	Error          string          `json:"error,omitempty"`
}

var mWatcherRuns = obs.Default().Counter("ebi_drift_watcher_runs_total",
	"Drift-watcher planning runs across all watched indexes.")

var mApplies = obs.Default().Counter("ebi_drift_applies_total",
	"Live re-encodings applied by drift watchers across all watched indexes.")

// Watcher periodically turns a Recorder's sketch into a weighted
// workload, prices a re-encoding, asks the advisor whether the index
// kind still fits, and publishes the result as gauges, a /debug/drift
// report, and (on threshold crossings) a structured-log event. Start
// launches the background goroutine; Stop halts it, waits for it, and
// removes the /debug/drift registration — no goroutine survives Stop.
type Watcher[V comparable] struct {
	ix  IndexView[V]
	rec *Recorder[V]
	cfg Config

	gGain      *obs.Gauge
	gBreakEven *obs.Gauge
	gProposedK *obs.Gauge
	gApplies   *obs.Gauge

	mu            sync.Mutex
	report        Report
	runs          uint64
	wasAbove      bool
	applies       uint64
	lastApply     *ApplyReport
	lastApplyTime time.Time
	stop          chan struct{}
	done          chan struct{}
	started       bool
}

// NewWatcher builds a watcher over ix fed by rec. The watcher is
// registered under the recorder's name; it is inert until Start (or a
// manual RunOnce).
func NewWatcher[V comparable](ix IndexView[V], rec *Recorder[V], cfg Config) *Watcher[V] {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.ScoreThreshold <= 0 {
		cfg.ScoreThreshold = DefaultScoreThreshold
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DefaultLogger()
	}
	if cfg.MinGain <= 0 {
		cfg.MinGain = 1
	}
	if cfg.ApplyCooldown <= 0 {
		cfg.ApplyCooldown = DefaultApplyCooldown
	}
	suffix := MetricSuffix(rec.Name())
	return &Watcher[V]{
		ix:  ix,
		rec: rec,
		cfg: cfg,
		gGain: obs.Default().Gauge("ebi_drift_plan_gain_"+suffix,
			"Per-workload-evaluation vector reads the latest proposed re-encoding of index "+rec.Name()+" would save."),
		gBreakEven: obs.Default().Gauge("ebi_drift_plan_break_even_"+suffix,
			"Workload evaluations before the latest proposed re-encoding of index "+rec.Name()+" pays off (-1: never)."),
		gProposedK: obs.Default().Gauge("ebi_drift_plan_proposed_k_"+suffix,
			"Vector count k of the latest proposed re-encoding of index "+rec.Name()+"."),
		gApplies: obs.Default().Gauge("ebi_drift_applies_"+suffix,
			"Live re-encodings the watcher has applied to index "+rec.Name()+"."),
	}
}

// Recorder returns the watcher's recorder (the observer to install on
// the index).
func (w *Watcher[V]) Recorder() *Recorder[V] { return w.rec }

// Start launches the background loop and registers the /debug/drift
// source. Calling Start on a running watcher is a no-op.
func (w *Watcher[V]) Start() {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	stop, done := w.stop, w.done
	w.mu.Unlock()

	obs.RegisterDriftSource(w.rec.Name(), func() any { return w.Report() })
	go w.loop(stop, done)
}

func (w *Watcher[V]) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.RunOnce()
		}
	}
}

// Stop halts the background loop, waits for it to exit, and removes
// the /debug/drift registration. Safe to call on a stopped watcher.
func (w *Watcher[V]) Stop() {
	w.mu.Lock()
	if !w.started {
		w.mu.Unlock()
		return
	}
	w.started = false
	stop, done := w.stop, w.done
	w.mu.Unlock()

	close(stop)
	<-done
	obs.UnregisterDriftSource(w.rec.Name())
}

// Report returns the latest published report (zero-valued before the
// first run).
func (w *Watcher[V]) Report() Report {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.report
}

// RunOnce performs one profiling-and-planning pass synchronously and
// returns (and publishes) the resulting report. The background loop
// calls it on every tick; tests and demos may drive it directly.
func (w *Watcher[V]) RunOnce() Report {
	mWatcherRuns.Inc()
	rep := Report{
		Name:           w.rec.Name(),
		Time:           time.Now(),
		Observed:       w.rec.Observed(),
		DriftScore:     w.rec.Score(),
		SketchCapacity: w.rec.SketchCapacity(),
		TopPredicates:  w.rec.TopPredicates(10),
	}
	rep.SketchErrBound = rep.Observed / uint64(rep.SketchCapacity)

	preds, weights := w.rec.Workload(w.cfg.MinCount)
	var plan *core.ReencodePlan[V]
	if len(preds) > 0 {
		var err error
		plan, err = w.ix.PlanReencode(preds, weights, w.cfg.Search)
		if err != nil {
			rep.Error = err.Error()
			plan = nil
		} else {
			rep.Plan = &PlanReport{
				Predicates:           len(preds),
				CurrentCost:          plan.CurrentCost,
				NewCost:              plan.NewCost,
				Gain:                 plan.Gain(),
				BreakEvenEvaluations: plan.BreakEvenEvaluations(),
				RebuildVectors:       plan.RebuildVectors,
				ProposedK:            plan.Mapping.K(),
			}
			w.gGain.Set(int64(rep.Plan.Gain))
			w.gBreakEven.Set(int64(rep.Plan.BreakEvenEvaluations))
			w.gProposedK.Set(int64(rep.Plan.ProposedK))
		}
		if adv, err := w.advise(preds, weights); err == nil {
			rep.Advice = adv
		}
	}

	w.maybeApply(&rep, plan)
	w.publish(&rep)
	return rep
}

// maybeApply applies the run's plan live when apply mode is on, the
// watched index can re-encode itself, the score is at or above the
// threshold, the gain clears the floor, and the cooldown has elapsed. A
// successful apply resets the recorder — the captured workload has been
// paid for, so the drift score restarts from zero (the apply analogue
// of the warning's edge triggering).
func (w *Watcher[V]) maybeApply(rep *Report, plan *core.ReencodePlan[V]) {
	if !w.cfg.Apply || plan == nil {
		return
	}
	re, ok := w.ix.(Reencoder[V])
	if !ok {
		return
	}
	if rep.DriftScore < w.cfg.ScoreThreshold || plan.Gain() < w.cfg.MinGain {
		return
	}
	w.mu.Lock()
	last := w.lastApplyTime
	w.mu.Unlock()
	if !last.IsZero() && time.Since(last) < w.cfg.ApplyCooldown {
		return
	}

	ar := &ApplyReport{
		Time:      time.Now(),
		Gain:      plan.Gain(),
		NewCost:   plan.NewCost,
		ProposedK: plan.Mapping.K(),
	}
	err := re.Reencode(plan.Mapping)
	if err != nil {
		ar.Error = err.Error()
	} else {
		w.rec.Reset()
		mApplies.Inc()
	}

	w.mu.Lock()
	w.lastApply = ar
	if err == nil {
		w.applies++
		w.lastApplyTime = ar.Time
	}
	applies := w.applies
	w.mu.Unlock()
	w.gApplies.Set(int64(applies))

	if err != nil {
		if w.cfg.Logger.Enabled(obs.LevelWarn) {
			w.cfg.Logger.Warn("live re-encoding failed",
				obs.Str("index", rep.Name), obs.Str("error", err.Error()))
		}
		return
	}
	if w.cfg.Logger.Enabled(obs.LevelInfo) {
		w.cfg.Logger.Info("live re-encoding applied",
			obs.Str("index", rep.Name),
			obs.Float("score", rep.DriftScore),
			obs.Int("gain", int64(ar.Gain)),
			obs.Int("new_cost", int64(ar.NewCost)),
			obs.Int("proposed_k", int64(ar.ProposedK)))
	}
}

// advise maps the captured workload onto the advisor's profile
// vocabulary: the weighted fraction of multi-value predicates is the
// range fraction, their weighted mean width the average range width,
// and sketch-captured predicates are by construction "predefined".
func (w *Watcher[V]) advise(preds [][]V, weights []int) (*AdviceReport, error) {
	var total, ranged, widthSum int
	for i, p := range preds {
		wt := weights[i]
		total += wt
		if len(p) > 1 {
			ranged += wt
			widthSum += wt * len(p)
		}
	}
	prof := advisor.WorkloadProfile{PredefinedRanges: true}
	if ranged > 0 {
		prof.RangeFraction = float64(ranged) / float64(total)
		prof.AvgRangeWidth = widthSum / ranged
	}
	rec, err := advisor.Advise(advisor.ColumnProfile{
		Name:        w.rec.Name(),
		Rows:        w.ix.Len(),
		Cardinality: w.ix.Cardinality(),
		Ordered:     w.cfg.Ordered,
	}, prof, w.cfg.PageSize, w.cfg.Degree)
	if err != nil {
		return nil, err
	}
	return &AdviceReport{Kind: rec.Kind.String(), Reason: rec.Reason}, nil
}

// publish stores the report and emits the edge-triggered threshold
// event.
func (w *Watcher[V]) publish(rep *Report) {
	w.mu.Lock()
	w.runs++
	rep.Runs = w.runs
	rep.Applies = w.applies
	rep.LastApply = w.lastApply
	above := rep.DriftScore >= w.cfg.ScoreThreshold
	crossed := above && !w.wasAbove
	w.wasAbove = above
	w.report = *rep
	w.mu.Unlock()

	if crossed && w.cfg.Logger.Enabled(obs.LevelWarn) {
		fields := []obs.Field{
			obs.Str("index", rep.Name),
			obs.Float("score", rep.DriftScore),
			obs.Float("threshold", w.cfg.ScoreThreshold),
			obs.Int("observed", int64(rep.Observed)),
		}
		if rep.Plan != nil {
			fields = append(fields,
				obs.Int("gain", int64(rep.Plan.Gain)),
				obs.Int("break_even_evaluations", int64(rep.Plan.BreakEvenEvaluations)))
		}
		w.cfg.Logger.Warn("encoding drift above threshold", fields...)
	}
}
