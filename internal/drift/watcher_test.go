package drift

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/iostat"
	"repro/internal/obs"
)

func istats(vectors int) iostat.Stats { return iostat.Stats{VectorsRead: vectors} }

// buildWatched returns a synced index over a 16-value column with the
// recorder installed, plus the watcher (not started).
func buildWatched(t *testing.T, name string, cfg Config) (*core.Synced[int], *Watcher[int]) {
	t.Helper()
	column := make([]int, 256)
	for i := range column {
		column[i] = i % 16
	}
	// Encoding optimized for an initial workload over low values.
	s, err := core.BuildSynced(column, nil, &core.Options[int]{
		Predicates: [][]int{{0, 1, 2, 3}, {0, 1}, {2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder[int](name, 32, 64)
	s.SetSelectionObserver(rec)
	return s, NewWatcher[int](s, rec, cfg)
}

// shiftWorkload runs a predicate mix the build-time encoding was not
// optimized for.
func shiftWorkload(s *core.Synced[int], rounds int) {
	for i := 0; i < rounds; i++ {
		_, _ = s.In([]int{9, 10, 11, 12})
		_, _ = s.In([]int{13, 14})
		_, _ = s.Eq(15)
	}
}

func TestWatcherSmoke(t *testing.T) {
	s, w := buildWatched(t, "watch-smoke", Config{Interval: 2 * time.Millisecond})
	w.Start()
	defer w.Stop()
	shiftWorkload(s, 20)

	deadline := time.Now().Add(5 * time.Second)
	var rep Report
	for {
		rep = w.Report()
		if rep.Plan != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no plan published; report = %+v", rep)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rep.Name != "watch-smoke" || rep.Runs == 0 || rep.Observed != 60 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Plan.Predicates != 3 || rep.Plan.CurrentCost <= 0 || rep.Plan.ProposedK <= 0 {
		t.Fatalf("plan = %+v", rep.Plan)
	}
	if rep.Plan.Gain != rep.Plan.CurrentCost-rep.Plan.NewCost {
		t.Fatalf("gain %d inconsistent with costs %d/%d",
			rep.Plan.Gain, rep.Plan.CurrentCost, rep.Plan.NewCost)
	}
	if rep.Advice == nil || rep.Advice.Kind == "" {
		t.Fatalf("advice = %+v", rep.Advice)
	}
	if len(rep.TopPredicates) != 3 {
		t.Fatalf("top predicates = %+v", rep.TopPredicates)
	}
	w.Stop()
	if _, ok := obs.DriftSnapshot()["watch-smoke"]; ok {
		t.Fatal("drift source still registered after Stop")
	}
}

// TestWatcherPlanMatchesOfflineExactly is the acceptance criterion: the
// watcher's published plan must agree exactly with an offline
// PlanReencode over the same captured workload (the encoding search is
// deterministic).
func TestWatcherPlanMatchesOfflineExactly(t *testing.T) {
	s, w := buildWatched(t, "watch-parity", Config{})
	shiftWorkload(s, 10)

	rep := w.RunOnce()
	if rep.Plan == nil {
		t.Fatalf("no plan; report = %+v", rep)
	}
	preds, weights := w.Recorder().Workload(0)
	offline, err := s.PlanReencode(preds, weights, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan.CurrentCost != offline.CurrentCost ||
		rep.Plan.NewCost != offline.NewCost ||
		rep.Plan.Gain != offline.Gain() ||
		rep.Plan.BreakEvenEvaluations != offline.BreakEvenEvaluations() ||
		rep.Plan.RebuildVectors != offline.RebuildVectors ||
		rep.Plan.ProposedK != offline.Mapping.K() {
		t.Fatalf("watcher plan %+v != offline plan cost %d/%d gain %d be %d rebuild %d k %d",
			rep.Plan, offline.CurrentCost, offline.NewCost, offline.Gain(),
			offline.BreakEvenEvaluations(), offline.RebuildVectors, offline.Mapping.K())
	}
}

func TestWatcherStartStopLeakFree(t *testing.T) {
	_, w := buildWatched(t, "watch-leak", Config{Interval: time.Millisecond})
	before := runtime.NumGoroutine()
	w.Start()
	w.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for w.Report().Runs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never ran")
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	w.Stop() // idempotent
	for i := 0; i < 500 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines %d > %d before Start", got, before)
	}
}

func TestWatcherThresholdEventEdgeTriggered(t *testing.T) {
	lg := obs.NewLogger(obs.LevelWarn)
	var mu sync.Mutex
	var events []obs.Event
	lg.AddSink(func(e obs.Event) {
		e.Fields = append([]obs.Field(nil), e.Fields...) // sinks must not retain
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})

	column := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ix, err := core.Build(column, nil, &core.Options[int]{DisableVoidReserve: true, DisableDontCares: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder[int]("watch-threshold", 8, 16)
	w := NewWatcher[int](ix, rec, Config{ScoreThreshold: 0.2, Logger: lg})

	ix.SetSelectionObserver(rec)
	_, _ = ix.In([]int{0, 1, 2, 3}) // reads 1 vector, min 1: no drift
	if rep := w.RunOnce(); rep.DriftScore != 0 {
		t.Fatalf("score = %v", rep.DriftScore)
	}
	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("%d events below threshold", n)
	}

	// Point queries read k=3 vectors against a min of 3 — still no
	// excess. Force drift through the observer directly: the stream
	// says reads were avoidable.
	for i := 0; i < 8; i++ {
		rec.ObserveSelection([]int{i}, istats(3), 1)
	}
	w.RunOnce()
	w.RunOnce() // still above: edge-trigger must not re-fire
	mu.Lock()
	n = len(events)
	var first obs.Event
	if n > 0 {
		first = events[0]
	}
	mu.Unlock()
	if n != 1 {
		t.Fatalf("threshold events = %d, want exactly 1", n)
	}
	if first.Msg != "encoding drift above threshold" {
		t.Fatalf("event = %+v", first)
	}
	if f, ok := first.Get("index"); !ok || f.Value() != "watch-threshold" {
		t.Fatalf("event index field = %+v", first)
	}
}

func TestDebugDriftEndpointGolden(t *testing.T) {
	s, w := buildWatched(t, "watch-golden", Config{})
	shiftWorkload(s, 5)
	w.Start()
	defer w.Stop()
	w.RunOnce()

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var payload map[string]struct {
		Name           string  `json:"name"`
		Time           string  `json:"time"`
		Runs           uint64  `json:"runs"`
		Observed       uint64  `json:"observed"`
		DriftScore     float64 `json:"drift_score"`
		SketchCapacity int     `json:"sketch_capacity"`
		SketchErrBound uint64  `json:"sketch_err_bound"`
		TopPredicates  []struct {
			Key   string `json:"key"`
			Count uint64 `json:"count"`
		} `json:"top_predicates"`
		Plan *struct {
			Predicates           int `json:"predicates"`
			CurrentCost          int `json:"current_cost"`
			NewCost              int `json:"new_cost"`
			Gain                 int `json:"gain"`
			BreakEvenEvaluations int `json:"break_even_evaluations"`
			RebuildVectors       int `json:"rebuild_vectors"`
			ProposedK            int `json:"proposed_k"`
		} `json:"plan"`
		Advice *struct {
			Kind   string `json:"kind"`
			Reason string `json:"reason"`
		} `json:"advice"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("/debug/drift not JSON: %v", err)
	}
	rep, ok := payload["watch-golden"]
	if !ok {
		t.Fatalf("payload missing watch-golden: %v", payload)
	}
	if rep.Name != "watch-golden" || rep.Runs == 0 || rep.Observed != 15 ||
		rep.SketchCapacity != 32 || rep.Time == "" {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.TopPredicates) != 3 || rep.TopPredicates[0].Count != 5 {
		t.Fatalf("top_predicates = %+v", rep.TopPredicates)
	}
	if rep.Plan == nil || rep.Plan.Predicates != 3 || rep.Plan.CurrentCost <= 0 ||
		rep.Plan.ProposedK <= 0 || rep.Plan.RebuildVectors <= 0 ||
		rep.Plan.Gain != rep.Plan.CurrentCost-rep.Plan.NewCost {
		t.Fatalf("plan = %+v", rep.Plan)
	}
	if rep.Advice == nil || rep.Advice.Kind == "" || rep.Advice.Reason == "" {
		t.Fatalf("advice = %+v", rep.Advice)
	}
}
