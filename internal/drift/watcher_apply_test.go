package drift

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
)

// TestWatcherApplyLive is apply mode end to end: a drifted workload must
// make RunOnce re-encode the live index through the epoch flip, reset the
// recorder (edge-triggered), publish the apply in the report, and leave
// queries bit-for-bit correct under the new encoding.
func TestWatcherApplyLive(t *testing.T) {
	s, w := buildWatched(t, "watch-apply", Config{
		Apply:          true,
		ScoreThreshold: 0.05,
		ApplyCooldown:  time.Hour, // block any second apply inside this test
	})
	shiftWorkload(s, 10)

	before := s.Mapping()
	rep := w.RunOnce()
	if rep.Plan == nil {
		t.Fatalf("no plan; report = %+v", rep)
	}
	if rep.Applies != 1 || rep.LastApply == nil {
		t.Fatalf("applies = %d, last = %+v", rep.Applies, rep.LastApply)
	}
	la := rep.LastApply
	if la.Error != "" {
		t.Fatalf("apply failed: %s", la.Error)
	}
	if la.Gain != rep.Plan.Gain || la.NewCost != rep.Plan.NewCost || la.ProposedK != rep.Plan.ProposedK {
		t.Fatalf("apply report %+v disagrees with plan %+v", la, rep.Plan)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2 (exactly one live flip)", s.Epoch())
	}

	// The proposed encoding differs from the build-time one (the workload
	// shifted), and queries under it still select the right rows.
	changed := false
	after := s.Mapping()
	for _, v := range s.Values() {
		ca, _ := before.CodeOf(v)
		cb, _ := after.CodeOf(v)
		if ca != cb {
			changed = true
		}
	}
	if !changed {
		t.Fatal("apply kept the identical code assignment")
	}

	// Edge triggering: the recorder was reset, so the next run sees an
	// empty capture and must not re-apply. (Checked before the query
	// probes below — those feed the recorder again.)
	rep2 := w.RunOnce()
	if rep2.Observed != 0 {
		t.Fatalf("recorder not reset: observed = %d", rep2.Observed)
	}
	if rep2.Applies != 1 {
		t.Fatalf("second run re-applied: applies = %d", rep2.Applies)
	}

	for v := 0; v < 16; v++ {
		rows, _ := s.Eq(v)
		if rows.Count() != 16 { // 256 rows, i%16
			t.Fatalf("post-apply Eq(%d) selects %d rows, want 16", v, rows.Count())
		}
	}

	// Cooldown: even a fresh drifted capture cannot re-apply within the
	// window.
	shiftWorkload(s, 10)
	rep3 := w.RunOnce()
	if rep3.Applies != 1 {
		t.Fatalf("apply ignored the cooldown: applies = %d", rep3.Applies)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch moved to %d during cooldown", s.Epoch())
	}
}

// TestWatcherApplyRespectsGainFloor: a capture whose best re-encoding
// gains nothing must never trigger an apply even above the score
// threshold.
func TestWatcherApplyRespectsGainFloor(t *testing.T) {
	s, w := buildWatched(t, "watch-apply-floor", Config{
		Apply:          true,
		ScoreThreshold: 0,
		MinGain:        1 << 30,
	})
	shiftWorkload(s, 10)
	rep := w.RunOnce()
	if rep.Plan == nil {
		t.Fatalf("no plan; report = %+v", rep)
	}
	if rep.Applies != 0 || rep.LastApply != nil {
		t.Fatalf("apply fired under an unreachable gain floor: %+v", rep)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d, want untouched 1", s.Epoch())
	}
}

// planOnlyView strips the Reencoder capability from a watched index, so
// apply mode must degrade to plan-and-report.
type planOnlyView struct{ ix *core.Index[int] }

func (v planOnlyView) PlanReencode(preds [][]int, weights []int, opt *encoding.SearchOptions) (*core.ReencodePlan[int], error) {
	return v.ix.PlanReencode(preds, weights, opt)
}
func (v planOnlyView) K() int           { return v.ix.K() }
func (v planOnlyView) Len() int         { return v.ix.Len() }
func (v planOnlyView) Cardinality() int { return v.ix.Cardinality() }

// TestWatcherApplyWithoutReencoder: apply mode over an index that cannot
// re-encode itself is a quiet no-op, not a panic.
func TestWatcherApplyWithoutReencoder(t *testing.T) {
	column := make([]int, 128)
	for i := range column {
		column[i] = i % 8
	}
	ix, err := core.Build(column, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder[int]("watch-apply-noop", 8, 16)
	ix.SetSelectionObserver(rec)
	w := NewWatcher[int](planOnlyView{ix}, rec, Config{Apply: true, ScoreThreshold: 0})
	for i := 0; i < 8; i++ {
		rec.ObserveSelection([]int{i}, istats(5), 1)
	}
	rep := w.RunOnce()
	if rep.Applies != 0 || rep.LastApply != nil {
		t.Fatalf("apply fired without a Reencoder: %+v", rep)
	}
}
