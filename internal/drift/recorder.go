// Package drift closes the loop the paper's Section 5 leaves open: it
// watches the live predicate stream, quantifies how far the current
// encoding has decayed from the Theorem 2.2/2.3 optimum for that
// stream, and periodically prices a re-encoding through
// core.PlanReencode and advisor.Advise. The pieces are a Recorder (a
// core.SelectionObserver feeding a Space-Saving top-K sketch plus
// rolling drift score) and a Watcher (a background goroutine that
// snapshots the sketch into a weighted workload, plans, publishes
// gauges and the /debug/drift report, and raises a structured-log
// event when drift crosses a threshold).
package drift

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/iostat"
	"repro/internal/obs"
)

// DefaultSketchCapacity is the Recorder's default top-K size; with
// capacity K the sketch's count error is bounded by observed/K.
const DefaultSketchCapacity = 64

// DefaultWindow is the default rolling-window length (in evaluations)
// of the drift score.
const DefaultWindow = 256

// sample is one evaluation's contribution to the rolling drift score.
type sample struct {
	excess int // vectors read beyond the theoretical minimum
	actual int // vectors read
}

// Recorder profiles one index's selection stream. It implements
// core.SelectionObserver: install it with SetSelectionObserver and
// every Eq/In/NotIn (and parallel/prepared) evaluation feeds it. It is
// safe for concurrent use and never calls back into the index, so it
// runs fine under Synced's shared lock.
//
// Two things are maintained per observation: the predicate's
// normalized key is counted in a bounded Space-Saving sketch (with a
// side table translating surviving keys back to value lists, pruned in
// lockstep with sketch evictions), and the evaluation's excess access
// — actual vectors read minus the Theorem 2.2/2.3 theoretical minimum
// for its selection width — enters a rolling window whose ratio
// sum(excess)/sum(actual) is the drift score: 0 means the encoding is
// provably as good as any encoding could be for the recent stream, 1
// means every read was avoidable.
type Recorder[V comparable] struct {
	name   string
	sketch *obs.TopK

	hExcess *obs.Histogram
	gScore  *obs.Gauge

	mu        sync.Mutex
	values    map[string][]V // sketch key -> selected value list
	window    []sample
	next      int
	filled    int
	sumExcess int
	sumActual int
}

// NewRecorder returns a recorder named name (the /debug/drift and
// metric-suffix key). sketchCapacity and window fall back to the
// package defaults when <= 0.
func NewRecorder[V comparable](name string, sketchCapacity, window int) *Recorder[V] {
	if name == "" {
		name = "index"
	}
	if sketchCapacity <= 0 {
		sketchCapacity = DefaultSketchCapacity
	}
	if window <= 0 {
		window = DefaultWindow
	}
	suffix := MetricSuffix(name)
	return &Recorder[V]{
		name:   name,
		sketch: obs.NewTopK(sketchCapacity),
		hExcess: obs.Default().Histogram("ebi_drift_excess_vectors_"+suffix,
			"Per-evaluation excess bitmap-vector reads (actual minus the Theorem 2.2/2.3 theoretical minimum) on index "+name+".",
			[]float64{0, 1, 2, 3, 4, 6, 8, 12, 16}),
		gScore: obs.Default().Gauge("ebi_drift_score_milli_"+suffix,
			"Rolling drift score of index "+name+" in thousandths: sum(excess)/sum(actual vectors read) over the recent evaluation window."),
		values: make(map[string][]V, sketchCapacity),
		window: make([]sample, window),
	}
}

// Name returns the recorder's registration name.
func (r *Recorder[V]) Name() string { return r.name }

// Key renders a selection value list as the normalized predicate key
// used by the sketch: values string-rendered, sorted, comma-joined —
// so "IN (b,a)" and "IN (a,b)" count as one predicate.
func Key[V comparable](values []V) string {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = fmt.Sprint(v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// ObserveSelection implements core.SelectionObserver.
func (r *Recorder[V]) ObserveSelection(values []V, st iostat.Stats, minVectors int) {
	excess := st.VectorsRead - minVectors
	if excess < 0 {
		excess = 0
	}
	r.hExcess.Observe(float64(excess))
	key := Key(values)

	r.mu.Lock()
	if _, ok := r.values[key]; !ok {
		r.values[key] = append([]V(nil), values...)
	}
	if evicted, was := r.sketch.Add(key, 1); was {
		delete(r.values, evicted)
	}
	if r.filled == len(r.window) {
		old := r.window[r.next]
		r.sumExcess -= old.excess
		r.sumActual -= old.actual
	} else {
		r.filled++
	}
	r.window[r.next] = sample{excess: excess, actual: st.VectorsRead}
	r.sumExcess += excess
	r.sumActual += st.VectorsRead
	r.next = (r.next + 1) % len(r.window)
	score := r.scoreLocked()
	r.mu.Unlock()

	r.gScore.Set(int64(score * 1000))
}

func (r *Recorder[V]) scoreLocked() float64 {
	if r.sumActual <= 0 {
		return 0
	}
	return float64(r.sumExcess) / float64(r.sumActual)
}

// Score returns the current rolling drift score in [0,1].
func (r *Recorder[V]) Score() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scoreLocked()
}

// Observed returns the total number of recorded evaluations (the N in
// the sketch's error bound N/K).
func (r *Recorder[V]) Observed() uint64 { return r.sketch.Observed() }

// SketchCapacity returns the sketch's K.
func (r *Recorder[V]) SketchCapacity() int { return r.sketch.Capacity() }

// TopPredicates returns up to n sketch entries, most frequent first
// (n <= 0 returns all retained).
func (r *Recorder[V]) TopPredicates(n int) []obs.TopKEntry {
	snap := r.sketch.Snapshot()
	if n > 0 && len(snap) > n {
		snap = snap[:n]
	}
	return snap
}

// Workload snapshots the sketch into the weighted predicate workload
// core.PlanReencode consumes: one predicate per retained key with
// count >= minCount, weighted by its estimated frequency. The
// predicate lists are copies; mutating them does not affect the
// recorder.
func (r *Recorder[V]) Workload(minCount uint64) (predicates [][]V, weights []int) {
	snap := r.sketch.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range snap {
		if minCount > 0 && e.Count < minCount {
			continue
		}
		vs, ok := r.values[e.Key]
		if !ok {
			continue // evicted between snapshot and lock
		}
		predicates = append(predicates, append([]V(nil), vs...))
		weights = append(weights, int(e.Count))
	}
	return predicates, weights
}

// Reset drops the sketch, the side table, and the rolling window.
func (r *Recorder[V]) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sketch.Reset()
	r.values = make(map[string][]V, r.sketch.Capacity())
	for i := range r.window {
		r.window[i] = sample{}
	}
	r.next, r.filled, r.sumExcess, r.sumActual = 0, 0, 0, 0
	r.gScore.Set(0)
}

// MetricSuffix renders a registration name as a metric-name suffix:
// lower-cased with every non-alphanumeric run collapsed to '_'.
func MetricSuffix(name string) string {
	var b strings.Builder
	lastUnderscore := false
	for _, c := range strings.ToLower(name) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteRune(c)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	out := strings.Trim(b.String(), "_")
	if out == "" {
		return "index"
	}
	return out
}
