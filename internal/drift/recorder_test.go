package drift

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/iostat"
)

func TestKeyNormalization(t *testing.T) {
	if Key([]int{3, 1, 2}) != Key([]int{2, 3, 1}) {
		t.Fatal("key is order-sensitive")
	}
	if Key([]string{"b"}) != "b" || Key([]int{1, 2}) != "1,2" {
		t.Fatalf("keys = %q, %q", Key([]string{"b"}), Key([]int{1, 2}))
	}
}

func TestMetricSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"fact.company": "fact_company",
		"Sales $$ EU":  "sales_eu",
		"":             "index",
		"___":          "index",
	} {
		if got := MetricSuffix(in); got != want {
			t.Errorf("MetricSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRecorderScoreAndWorkload(t *testing.T) {
	r := NewRecorder[int]("rec-test-score", 8, 4)
	st := func(v int) iostat.Stats { return iostat.Stats{VectorsRead: v} }

	// Perfect evaluations: actual == minimum, score 0.
	r.ObserveSelection([]int{1}, st(2), 2)
	r.ObserveSelection([]int{2}, st(2), 2)
	if s := r.Score(); s != 0 {
		t.Fatalf("score = %v, want 0", s)
	}
	// Two decayed evaluations: window holds (0,2)(0,2)(2,3)(2,3),
	// score = 4/10.
	r.ObserveSelection([]int{3}, st(3), 1)
	r.ObserveSelection([]int{3}, st(3), 1)
	if s := r.Score(); s != 0.4 {
		t.Fatalf("score = %v, want 0.4", s)
	}
	// Window slides: two more decayed evaluations push the perfect
	// ones out entirely -> score = 8/12.
	r.ObserveSelection([]int{3}, st(3), 1)
	r.ObserveSelection([]int{3}, st(3), 1)
	if s := r.Score(); s < 0.66 || s > 0.67 {
		t.Fatalf("score = %v, want 2/3", s)
	}

	if r.Observed() != 6 {
		t.Fatalf("Observed = %d", r.Observed())
	}
	preds, weights := r.Workload(2)
	if len(preds) != 1 || len(weights) != 1 || weights[0] != 4 || Key(preds[0]) != "3" {
		t.Fatalf("Workload(2) = %v, %v", preds, weights)
	}
	preds, weights = r.Workload(0)
	if len(preds) != 3 {
		t.Fatalf("Workload(0) kept %d predicates", len(preds))
	}
	// Heaviest first, mirroring the sketch snapshot order.
	if weights[0] != 4 {
		t.Fatalf("weights = %v", weights)
	}

	r.Reset()
	if r.Observed() != 0 || r.Score() != 0 {
		t.Fatal("Reset left state behind")
	}
	if preds, _ := r.Workload(0); len(preds) != 0 {
		t.Fatal("Reset left workload behind")
	}
}

func TestRecorderSideTablePrunedWithEvictions(t *testing.T) {
	r := NewRecorder[int]("rec-test-prune", 4, 8)
	for i := 0; i < 100; i++ {
		r.ObserveSelection([]int{i}, iostat.Stats{VectorsRead: 1}, 1)
	}
	r.mu.Lock()
	n := len(r.values)
	r.mu.Unlock()
	if n > 4 {
		t.Fatalf("side table holds %d entries, sketch capacity 4", n)
	}
	preds, _ := r.Workload(0)
	if len(preds) == 0 || len(preds) > 4 {
		t.Fatalf("workload has %d predicates", len(preds))
	}
}

// TestRecorderConcurrentQueries drives a real index from parallel
// goroutines with the recorder installed; under -race this is the
// acceptance check that the sketch and drift gauges stay sound under
// concurrent queries.
func TestRecorderConcurrentQueries(t *testing.T) {
	column := make([]int, 512)
	for i := range column {
		column[i] = i % 16
	}
	s, err := core.BuildSynced(column, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder[int]("rec-test-concurrent", 16, 64)
	s.SetSelectionObserver(r)

	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 3 {
				case 0:
					_, _ = s.Eq(i % 16)
				case 1:
					_, _ = s.In([]int{i % 16, (i + 1) % 16})
				default:
					_, _ = s.NotIn([]int{0, 1, 2, 3})
				}
			}
		}(g)
	}
	// A reader races the writers through every accessor.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Score()
			_, _ = r.Workload(0)
			_ = r.TopPredicates(5)
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()

	if got, want := r.Observed(), uint64(goroutines*perG); got != want {
		t.Fatalf("Observed = %d, want %d", got, want)
	}
	for _, e := range r.TopPredicates(0) {
		if e.Key == "" {
			t.Fatal("torn sketch entry")
		}
	}
	if s := r.Score(); s < 0 || s > 1 {
		t.Fatalf("score %v out of [0,1]", s)
	}
	s.SetSelectionObserver(nil)
	_ = fmt.Sprint(r.Name())
}
