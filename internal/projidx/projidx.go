// Package projidx implements the projection index of O'Neil & Quass:
// a materialization of all values of an attribute in tuple-id order.
// Section 4 of the paper relates it to an encoded bitmap index whose
// mapping table is the internal code table, stored horizontally (values
// contiguous) rather than vertically (bit positions contiguous).
//
// Selections are evaluated by scanning the materialized column, which
// costs one pass over n fixed-width values regardless of predicate
// selectivity — the baseline shape the bitmap variants are compared
// against.
package projidx

import (
	"cmp"

	"repro/internal/bitvec"
	"repro/internal/iostat"
)

// Index is a projection index over an ordered attribute type.
type Index[V cmp.Ordered] struct {
	column []V
}

// Build materializes the column. The slice is copied so later mutations of
// the caller's data do not alias the index.
func Build[V cmp.Ordered](column []V) *Index[V] {
	c := make([]V, len(column))
	copy(c, column)
	return &Index[V]{column: c}
}

// Len returns the number of rows.
func (ix *Index[V]) Len() int { return len(ix.column) }

// Append adds a row.
func (ix *Index[V]) Append(v V) { ix.column = append(ix.column, v) }

// At returns the value of a row — the projection index's O(1) positional
// access, its main advantage over value-organized indexes.
func (ix *Index[V]) At(row int) V { return ix.column[row] }

// Eq scans for rows equal to v.
func (ix *Index[V]) Eq(v V) (*bitvec.Vector, iostat.Stats) {
	return ix.scan(func(x V) bool { return x == v })
}

// Range scans for rows with lo <= value <= hi.
func (ix *Index[V]) Range(lo, hi V) (*bitvec.Vector, iostat.Stats) {
	return ix.scan(func(x V) bool { return x >= lo && x <= hi })
}

// In scans for rows whose value is in the given set.
func (ix *Index[V]) In(values []V) (*bitvec.Vector, iostat.Stats) {
	set := make(map[V]bool, len(values))
	for _, v := range values {
		set[v] = true
	}
	return ix.scan(func(x V) bool { return set[x] })
}

func (ix *Index[V]) scan(pred func(V) bool) (*bitvec.Vector, iostat.Stats) {
	out := bitvec.New(len(ix.column))
	for i, x := range ix.column {
		if pred(x) {
			out.Set(i)
		}
	}
	return out, iostat.Stats{RowsScanned: len(ix.column)}
}
