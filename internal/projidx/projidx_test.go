package projidx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildCopies(t *testing.T) {
	col := []int{3, 1, 4}
	ix := Build(col)
	col[0] = 99
	if ix.At(0) != 3 {
		t.Fatal("Build must copy the column")
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestEqRangeIn(t *testing.T) {
	ix := Build([]int{5, 0, 7, 5, 3})
	rows, st := ix.Eq(5)
	if rows.String() != "10010" {
		t.Fatalf("Eq = %s", rows.String())
	}
	if st.RowsScanned != 5 {
		t.Fatalf("Eq scanned %d rows, want 5 (full scan)", st.RowsScanned)
	}
	rows, _ = ix.Range(3, 5)
	if rows.String() != "10011" {
		t.Fatalf("Range = %s", rows.String())
	}
	rows, _ = ix.In([]int{0, 7})
	if rows.String() != "01100" {
		t.Fatalf("In = %s", rows.String())
	}
}

func TestAppendAt(t *testing.T) {
	ix := Build([]string{"x"})
	ix.Append("y")
	if ix.Len() != 2 || ix.At(1) != "y" {
		t.Fatal("Append/At wrong")
	}
}

// Property: projection-index results agree with direct evaluation.
func TestPropMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		col := make([]int, n)
		for i := range col {
			col[i] = r.Intn(50)
		}
		ix := Build(col)
		lo, hi := r.Intn(50), r.Intn(50)
		rows, _ := ix.Range(lo, hi)
		for i, v := range col {
			if rows.Get(i) != (v >= lo && v <= hi) {
				return false
			}
		}
		v := r.Intn(50)
		eq, _ := ix.Eq(v)
		for i, x := range col {
			if eq.Get(i) != (x == v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
