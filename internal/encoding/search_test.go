package encoding

import (
	"testing"

	"repro/internal/boolmin"
)

func TestCostFigure3(t *testing.T) {
	// Paper: mapping 3(a) evaluates both selections with 1 vector each;
	// the improper mapping needs 3 each.
	proper := figure3a()
	cost, err := Cost(proper, [][]string{sel1, sel2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Errorf("figure 3(a) cost = %d, want 2 (1+1)", cost)
	}
	improper := NewMapping[string](3)
	improper.MustAdd("a", 0b000)
	improper.MustAdd("c", 0b001)
	improper.MustAdd("g", 0b010)
	improper.MustAdd("b", 0b011)
	improper.MustAdd("e", 0b100)
	improper.MustAdd("d", 0b101)
	improper.MustAdd("h", 0b110)
	improper.MustAdd("f", 0b111)
	cost, err = Cost(improper, [][]string{sel1, sel2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 6 {
		t.Errorf("figure 3(b) cost = %d, want 6 (3+3)", cost)
	}
	if _, err := Cost(proper, [][]string{{"bogus"}}, false); err == nil {
		t.Error("Cost with unknown value should error")
	}
}

// FindEncoding on the paper's Figure 3 instance must reach the optimal
// total cost 2 via the exact search.
func TestFindEncodingFigure3Optimal(t *testing.T) {
	values := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	m, err := FindEncoding(values, [][]string{sel1, sel2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := Cost(m, [][]string{sel1, sel2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Errorf("found encoding cost = %d, want optimal 2\n%s", cost, m)
	}
	ok, err := IsWellDefinedAll(m, [][]string{sel1, sel2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("optimal encoding should be well-defined wrt both selections\n%s", m)
	}
}

func TestFindEncodingValidation(t *testing.T) {
	if _, err := FindEncoding([]string{}, nil, nil); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := FindEncoding([]string{"a", "a"}, nil, nil); err == nil {
		t.Error("duplicate values should error")
	}
	if _, err := FindEncoding([]string{"a"}, [][]string{{"z"}}, nil); err == nil {
		t.Error("predicate outside domain should error")
	}
}

// The heuristic path (domain > ExactLimit) must produce a complete,
// injective mapping and beat the trivial sequential mapping on a clustered
// workload.
func TestFindEncodingHeuristicBeatsTrivial(t *testing.T) {
	var values []int
	for i := 0; i < 32; i++ {
		values = append(values, i)
	}
	// Predicates: four aligned blocks of 8 co-accessed values.
	var preds [][]int
	for b := 0; b < 4; b++ {
		var p []int
		for i := 0; i < 8; i++ {
			p = append(p, b*8+i)
		}
		preds = append(preds, p)
	}
	// Interleave the values so the trivial order is bad.
	shuffled := make([]int, len(values))
	for i, v := range values {
		shuffled[(i*13)%32] = v
	}
	m, err := FindEncoding(shuffled, preds, &SearchOptions{SwapBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 32 || m.K() != 5 {
		t.Fatalf("mapping incomplete: len=%d k=%d", m.Len(), m.K())
	}
	got, err := Cost(m, preds, false)
	if err != nil {
		t.Fatal(err)
	}
	trivial, err := Cost(MappingOf(shuffled), preds, false)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal is 4 blocks x cost 2 (each block an aligned 8-subcube of a
	// 32-space: 5-3 = 2 vectors). The heuristic should reach it.
	if got != 8 {
		t.Errorf("heuristic cost = %d, want 8 (trivial interleaved = %d)", got, trivial)
	}
	if got > trivial {
		t.Errorf("heuristic (%d) worse than trivial (%d)", got, trivial)
	}
}

func TestFindEncodingWithDontCares(t *testing.T) {
	// 6 values in a 3-bit space: 2 free codes become don't-cares.
	values := []string{"u", "v", "w", "x", "y", "z"}
	preds := [][]string{{"u", "v", "w"}} // odd-size predicate
	m, err := FindEncoding(values, preds, &SearchOptions{UseDontCares: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.FreeCodes()) != 2 {
		t.Fatalf("free codes = %v, want 2 of them", m.FreeCodes())
	}
	cost, err := Cost(m, preds, true)
	if err != nil {
		t.Fatal(err)
	}
	// A 3-value predicate plus one don't-care can cover a 4-subcube: 1
	// vector.
	if cost != 1 {
		t.Errorf("don't-care-assisted cost = %d, want 1\n%s", cost, m)
	}
}

// Theorem 2.3 anchor: an encoding well-defined wrt all predicates attains
// the per-predicate information-theoretic minimum.
func TestTheorem23ExactSearchReachesMinimum(t *testing.T) {
	values := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	preds := [][]string{{"a", "b"}, {"c", "d", "e", "f"}, {"g", "h"}}
	m, err := FindEncoding(values, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		codes, _ := m.CodesOf(p)
		got := boolmin.Minimize(m.K(), codes, nil).AccessCost()
		// Minimum possible: k - log2|p| for subcube-capable sizes.
		want := m.K() - BitsFor(len(codes))
		if got != want {
			t.Errorf("predicate %v: cost %d, want %d\n%s", p, got, want, m)
		}
	}
}
