// Package encoding implements the encoding machinery of Wu & Buchmann's
// encoded bitmap index: one-to-one mappings from attribute domains to
// k-bit codes, the binary-distance/chain/prime-chain apparatus of
// Definitions 2.2-2.4, the well-defined-encoding criterion of Definition
// 2.5, search procedures for finding good encodings with respect to a
// predicate workload, and the paper's encoding variants (hierarchy,
// total-order preserving, range-based).
package encoding

import (
	"fmt"
	"math/bits"
	"sort"
)

// BitsFor returns ceil(log2 m), the number of bitmap vectors an encoded
// bitmap index needs for a domain of m values. BitsFor(1) and BitsFor(0)
// are 0 by convention (a single-valued domain needs no discriminating bit,
// though callers typically index domains with m >= 2).
func BitsFor(m int) int {
	if m <= 1 {
		return 0
	}
	return bits.Len(uint(m - 1))
}

// Mapping is the one-to-one mapping M^A from Definition 2.1: attribute
// values to <b_{k-1}...b_0> codes. It is bidirectional and records k, the
// code width in bits.
type Mapping[V comparable] struct {
	k       int
	toCode  map[V]uint32
	toValue map[uint32]V
}

// NewMapping returns an empty mapping with k-bit codes.
func NewMapping[V comparable](k int) *Mapping[V] {
	if k < 0 || k > 30 {
		panic(fmt.Sprintf("encoding: k=%d out of range [0,30]", k))
	}
	return &Mapping[V]{k: k, toCode: make(map[V]uint32), toValue: make(map[uint32]V)}
}

// MappingOf builds a mapping with k = BitsFor(len(values)) assigning codes
// in the order given: values[i] gets code i. This is the "trivial"
// continuous-integer encoding of dynamic bitmaps (Section 4).
func MappingOf[V comparable](values []V) *Mapping[V] {
	m := NewMapping[V](BitsFor(len(values)))
	for i, v := range values {
		m.MustAdd(v, uint32(i))
	}
	return m
}

// K returns the code width in bits.
func (m *Mapping[V]) K() int { return m.k }

// Len returns the number of mapped values.
func (m *Mapping[V]) Len() int { return len(m.toCode) }

// Add maps value v to code. It fails if v is already mapped, the code is
// already taken, or the code does not fit in k bits — the mapping must stay
// one-to-one.
func (m *Mapping[V]) Add(v V, code uint32) error {
	if code >= 1<<uint(m.k) && !(m.k == 0 && code == 0) {
		return fmt.Errorf("encoding: code %d does not fit in %d bits", code, m.k)
	}
	if old, ok := m.toCode[v]; ok {
		return fmt.Errorf("encoding: value %v already mapped to %0*b", v, m.k, old)
	}
	if old, ok := m.toValue[code]; ok {
		return fmt.Errorf("encoding: code %0*b already maps value %v", m.k, code, old)
	}
	m.toCode[v] = code
	m.toValue[code] = v
	return nil
}

// MustAdd is Add that panics on error; for statically correct literals.
func (m *Mapping[V]) MustAdd(v V, code uint32) {
	if err := m.Add(v, code); err != nil {
		panic(err)
	}
}

// CodeOf returns the code of v.
func (m *Mapping[V]) CodeOf(v V) (uint32, bool) {
	c, ok := m.toCode[v]
	return c, ok
}

// ValueOf returns the value mapped to code.
func (m *Mapping[V]) ValueOf(code uint32) (V, bool) {
	v, ok := m.toValue[code]
	return v, ok
}

// Contains reports whether v is mapped.
func (m *Mapping[V]) Contains(v V) bool {
	_, ok := m.toCode[v]
	return ok
}

// CodesOf translates a subdomain into its code set. Unknown values are
// reported in the error.
func (m *Mapping[V]) CodesOf(values []V) ([]uint32, error) {
	out := make([]uint32, 0, len(values))
	for _, v := range values {
		c, ok := m.toCode[v]
		if !ok {
			return nil, fmt.Errorf("encoding: value %v not in mapping", v)
		}
		out = append(out, c)
	}
	return out, nil
}

// Values returns all mapped values ordered by code.
func (m *Mapping[V]) Values() []V {
	codes := m.Codes()
	out := make([]V, len(codes))
	for i, c := range codes {
		out[i] = m.toValue[c]
	}
	return out
}

// Codes returns all assigned codes in ascending order.
func (m *Mapping[V]) Codes() []uint32 {
	out := make([]uint32, 0, len(m.toValue))
	for c := range m.toValue {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FreeCodes returns the unassigned codes (the don't-care terms available to
// logical reduction, per footnote 3 of the paper) in ascending order.
func (m *Mapping[V]) FreeCodes() []uint32 {
	var out []uint32
	for c := uint32(0); c < 1<<uint(m.k); c++ {
		if _, ok := m.toValue[c]; !ok {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns a deep copy.
func (m *Mapping[V]) Clone() *Mapping[V] {
	n := NewMapping[V](m.k)
	for v, c := range m.toCode {
		n.toCode[v] = c
		n.toValue[c] = v
	}
	return n
}

// Widen returns a copy of the mapping with newK-bit codes (newK >= k).
// Existing codes are preserved (zero-extended), which is exactly step 1 of
// the paper's domain-expansion maintenance: old retrieval functions gain an
// ANDed B'_{new} literal implicitly because old codes have 0 in the new
// positions.
func (m *Mapping[V]) Widen(newK int) *Mapping[V] {
	if newK < m.k {
		panic(fmt.Sprintf("encoding: Widen from %d to %d bits would truncate", m.k, newK))
	}
	n := m.Clone()
	n.k = newK
	return n
}

// Swap exchanges the codes of two mapped values; used by local-search
// encoding optimization.
func (m *Mapping[V]) Swap(a, b V) error {
	ca, ok := m.toCode[a]
	if !ok {
		return fmt.Errorf("encoding: value %v not in mapping", a)
	}
	cb, ok := m.toCode[b]
	if !ok {
		return fmt.Errorf("encoding: value %v not in mapping", b)
	}
	m.toCode[a], m.toCode[b] = cb, ca
	m.toValue[ca], m.toValue[cb] = b, a
	return nil
}

// Rebind assigns value v the (currently free) code, removing its old code.
func (m *Mapping[V]) Rebind(v V, code uint32) error {
	old, ok := m.toCode[v]
	if !ok {
		return fmt.Errorf("encoding: value %v not in mapping", v)
	}
	if code >= 1<<uint(m.k) {
		return fmt.Errorf("encoding: code %d does not fit in %d bits", code, m.k)
	}
	if holder, taken := m.toValue[code]; taken && holder != v {
		return fmt.Errorf("encoding: code %0*b already maps value %v", m.k, code, holder)
	}
	delete(m.toValue, old)
	m.toCode[v] = code
	m.toValue[code] = v
	return nil
}

// String renders the mapping table like the paper's figures, ordered by
// code.
func (m *Mapping[V]) String() string {
	var sb []byte
	for _, c := range m.Codes() {
		sb = fmt.Appendf(sb, "%v\t%0*b\n", m.toValue[c], m.k, c)
	}
	return string(sb)
}
