package encoding

import (
	"testing"

	"repro/internal/boolmin"
)

// The paper's Figure 7 setup: domain 6 <= A < 20 with predefined ranges
// [6,10), [8,12), [10,13), [16,20).
func paperRanges() (int64, int64, []Interval) {
	return 6, 20, []Interval{{6, 10}, {8, 12}, {10, 13}, {16, 20}}
}

func TestPartitionRangesFigure7(t *testing.T) {
	lo, hi, preds := paperRanges()
	parts, err := PartitionRanges(lo, hi, preds)
	if err != nil {
		t.Fatal(err)
	}
	want := []Interval{{6, 8}, {8, 10}, {10, 12}, {12, 13}, {13, 16}, {16, 20}}
	if len(parts) != len(want) {
		t.Fatalf("got %d partitions %v, want %d", len(parts), parts, len(want))
	}
	for i := range want {
		if parts[i] != want[i] {
			t.Errorf("partition %d = %v, want %v", i, parts[i], want[i])
		}
	}
}

func TestPartitionRangesValidation(t *testing.T) {
	if _, err := PartitionRanges(10, 10, nil); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := PartitionRanges(0, 10, []Interval{{5, 5}}); err == nil {
		t.Error("empty predicate should error")
	}
	if _, err := PartitionRanges(0, 10, []Interval{{5, 15}}); err == nil {
		t.Error("out-of-domain predicate should error")
	}
	// No predicates: single partition covering the domain.
	parts, err := PartitionRanges(0, 10, nil)
	if err != nil || len(parts) != 1 || parts[0] != (Interval{0, 10}) {
		t.Fatalf("no-predicate partition = %v, %v", parts, err)
	}
}

// Verify the paper's hand-built Figure 8(a) encoding yields the reduced
// retrieval functions of Figure 8(b), using free codes as don't-cares.
func TestPaperFigure8Mapping(t *testing.T) {
	m := NewMapping[Interval](3)
	m.MustAdd(Interval{6, 8}, 0b000)
	m.MustAdd(Interval{8, 10}, 0b001)
	m.MustAdd(Interval{10, 12}, 0b101)
	m.MustAdd(Interval{12, 13}, 0b100)
	m.MustAdd(Interval{13, 16}, 0b010)
	m.MustAdd(Interval{16, 20}, 0b110)
	dc := m.FreeCodes() // {011, 111}
	if len(dc) != 2 || dc[0] != 0b011 || dc[1] != 0b111 {
		t.Fatalf("FreeCodes = %v, want [011 111]", dc)
	}

	// Figure 8(b)'s reductions as printed, reproduced without don't-cares
	// (the paper reduced these three by hand without them).
	plain := []struct {
		name  string
		parts []Interval
		want  string
	}{
		{"6<=A<10", []Interval{{6, 8}, {8, 10}}, "B2'B1'"},
		{"8<=A<12", []Interval{{8, 10}, {10, 12}}, "B1'B0"},
		{"10<=A<13", []Interval{{10, 12}, {12, 13}}, "B2B1'"},
	}
	for _, c := range plain {
		codes, err := m.CodesOf(c.parts)
		if err != nil {
			t.Fatal(err)
		}
		e := boolmin.Minimize(3, codes, nil)
		if got := e.String(); got != c.want {
			t.Errorf("%s: reduced to %q, want %q", c.name, got, c.want)
		}
		if e.AccessCost() != 2 {
			t.Errorf("%s: cost %d, want 2", c.name, e.AccessCost())
		}
	}

	// "16<=A<20" is a single interval; Figure 8(b) prints B2B1, which
	// requires using the free code 111 as a don't-care.
	codes, _ := m.CodesOf([]Interval{{16, 20}})
	e := boolmin.Minimize(3, codes, dc)
	if got := e.String(); got != "B2B1" {
		t.Errorf("16<=A<20 with don't-cares: %q, want B2B1", got)
	}

	// Full don't-care exploitation even beats the paper's hand reduction
	// for 8<=A<12: codes {001,101} plus free {011,111} cover all of B0.
	codes, _ = m.CodesOf([]Interval{{8, 10}, {10, 12}})
	e = boolmin.Minimize(3, codes, dc)
	if got := e.String(); got != "B0" {
		t.Errorf("8<=A<12 with don't-cares: %q, want B0 (1 vector)", got)
	}
}

// RangeEncoding should find an encoding matching the paper's quality: each
// predefined selection evaluable with 2 vectors.
func TestRangeEncodingFigure7Quality(t *testing.T) {
	lo, hi, preds := paperRanges()
	m, parts, err := RangeEncoding(lo, hi, preds, &SearchOptions{UseDontCares: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 6 || m.Len() != 6 || m.K() != 3 {
		t.Fatalf("shape: parts=%d len=%d k=%d", len(parts), m.Len(), m.K())
	}
	dc := m.FreeCodes()
	total := 0
	for _, p := range preds {
		var sel []Interval
		for _, part := range parts {
			if part.Lo >= p.Lo && part.Hi <= p.Hi {
				sel = append(sel, part)
			}
		}
		codes, err := m.CodesOf(sel)
		if err != nil {
			t.Fatal(err)
		}
		total += boolmin.Minimize(3, codes, dc).AccessCost()
	}
	if total > 8 {
		t.Errorf("total cost = %d, paper's encoding achieves 8 (2 per selection)", total)
	}
}

func TestIntervalFor(t *testing.T) {
	parts := []Interval{{6, 8}, {8, 10}, {10, 12}, {12, 13}, {13, 16}, {16, 20}}
	cases := map[int64]Interval{
		6: {6, 8}, 7: {6, 8}, 8: {8, 10}, 12: {12, 13}, 15: {13, 16}, 19: {16, 20},
	}
	for x, want := range cases {
		got, ok := IntervalFor(parts, x)
		if !ok || got != want {
			t.Errorf("IntervalFor(%d) = %v,%v, want %v", x, got, ok, want)
		}
	}
	if _, ok := IntervalFor(parts, 20); ok {
		t.Error("20 is outside the domain")
	}
	if _, ok := IntervalFor(parts, 5); ok {
		t.Error("5 is outside the domain")
	}
	if iv := (Interval{6, 8}); iv.String() != "[6,8)" || !iv.Contains(6) || iv.Contains(8) || iv.Empty() {
		t.Error("Interval basics wrong")
	}
}
