package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/boolmin"
)

func TestConstructWellDefinedBasics(t *testing.T) {
	values := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	sub := []string{"c", "f", "a", "h"}
	m, err := ConstructWellDefined(values, sub, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 8 || m.K() != 3 {
		t.Fatalf("shape: len=%d k=%d", m.Len(), m.K())
	}
	ok, err := IsWellDefined(m, sub)
	if err != nil || !ok {
		t.Fatalf("construction not well-defined: %v %v\n%s", ok, err, m)
	}
	codes, _ := m.CodesOf(sub)
	got := boolmin.Minimize(m.K(), codes, nil).AccessCost()
	if want := SubcubeCost(m.K(), len(sub)); got != want {
		t.Fatalf("cost %d, want %d", got, want)
	}
}

func TestConstructWellDefinedReserveZero(t *testing.T) {
	values := []int{1, 2, 3, 4, 5, 6, 7}
	sub := []int{2, 5, 7, 1}
	m, err := ConstructWellDefined(values, sub, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, taken := m.ValueOf(0); taken {
		t.Fatal("code 0 must stay free")
	}
	ok, err := IsWellDefined(m, sub)
	if err != nil || !ok {
		t.Fatalf("not well-defined: %v %v\n%s", ok, err, m)
	}
	codes, _ := m.CodesOf(sub)
	if got := boolmin.Minimize(m.K(), codes, nil).AccessCost(); got != SubcubeCost(m.K(), 4) {
		t.Fatalf("cost %d", got)
	}
}

func TestConstructWellDefinedWidensWhenTight(t *testing.T) {
	// 8 values, subdomain of 8, zero reserved: the aligned block [8,16)
	// does not exist in a 3-bit space, so the construction widens to 4.
	values := []int{0, 1, 2, 3, 4, 5, 6, 7}
	m, err := ConstructWellDefined(values, values, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 4 {
		t.Fatalf("K = %d, want widened 4", m.K())
	}
	if _, taken := m.ValueOf(0); taken {
		t.Fatal("code 0 must stay free")
	}
	codes, _ := m.CodesOf(values)
	if got := boolmin.Minimize(4, codes, nil).AccessCost(); got != 1 {
		t.Fatalf("full-domain subcube cost = %d, want 1", got)
	}
}

func TestConstructWellDefinedValidation(t *testing.T) {
	vals := []string{"a", "b", "c"}
	if _, err := ConstructWellDefined(vals, []string{"a", "b", "c"}, false); err == nil {
		t.Fatal("non-power-of-two subdomain should error")
	}
	if _, err := ConstructWellDefined(vals, []string{"a", "a"}, false); err == nil {
		t.Fatal("duplicate subdomain value should error")
	}
	if _, err := ConstructWellDefined([]string{"a", "a", "b"}, []string{"a", "b"}, false); err == nil {
		t.Fatal("duplicate domain value should error")
	}
	if _, err := ConstructWellDefined(vals, []string{"z", "a"}, false); err == nil {
		t.Fatal("subdomain outside domain should error")
	}
}

// Property: for random domains and power-of-two subdomains, the
// construction is a complete injective mapping, well-defined wrt the
// subdomain, attaining the Theorem 2.2 optimum.
func TestPropConstructWellDefined(t *testing.T) {
	f := func(seed int64, reserve bool) bool {
		r := rand.New(rand.NewSource(seed))
		total := 3 + r.Intn(20)
		values := make([]int, total)
		for i := range values {
			values[i] = i * 7
		}
		p := 1 << uint(r.Intn(3)+1) // 2, 4, or 8
		if p > total {
			p = 2
		}
		perm := r.Perm(total)
		sub := make([]int, p)
		for i := 0; i < p; i++ {
			sub[i] = values[perm[i]]
		}
		m, err := ConstructWellDefined(values, sub, reserve)
		if err != nil {
			return false
		}
		if m.Len() != total {
			return false
		}
		if reserve {
			if _, taken := m.ValueOf(0); taken {
				return false
			}
		}
		ok, err := IsWellDefined(m, sub)
		if err != nil || !ok {
			return false
		}
		codes, _ := m.CodesOf(sub)
		want := boolmin.MinimalAccessCost(m.K(), codes, nil)
		got := boolmin.Minimize(m.K(), codes, nil).AccessCost()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Weighted search: hot predicates dominate the objective.
func TestFindEncodingWeighted(t *testing.T) {
	values := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	// Two conflicting predicates that cannot both be subcubes... actually
	// give one a weight of 100: the search must satisfy it perfectly.
	hot := []string{"a", "e", "c", "g"}
	cold := []string{"a", "b"}
	m, err := FindEncoding(values, [][]string{hot, cold}, &SearchOptions{Weights: []int{100, 1}})
	if err != nil {
		t.Fatal(err)
	}
	codes, _ := m.CodesOf(hot)
	if got := boolmin.Minimize(3, codes, nil).AccessCost(); got != 1 {
		t.Fatalf("hot predicate cost = %d, want 1 under weight 100\n%s", got, m)
	}
	if _, err := FindEncoding(values, [][]string{hot}, &SearchOptions{Weights: []int{1, 2}}); err == nil {
		t.Fatal("weight length mismatch should error")
	}
	if _, err := WeightedCost(m, [][]string{hot}, []int{1, 2}, false, false); err == nil {
		t.Fatal("WeightedCost mismatch should error")
	}
	c, err := WeightedCost(m, [][]string{hot, cold}, []int{100, 1}, false, false)
	if err != nil || c < 100 {
		t.Fatalf("WeightedCost = %d, %v", c, err)
	}
}
