package encoding

import (
	"fmt"

	"repro/internal/boolmin"
)

// OrderPreservingEncoding maps the i-th value of an ascending-sorted domain
// to code i. This is the trivial total-order preserving encoding: the
// resulting encoded bitmap index is exactly a bit-sliced index of the rank
// of each value (Section 2.3, "a set of bit slices of the original
// attribute").
func OrderPreservingEncoding[V comparable](sorted []V) *Mapping[V] {
	return MappingOf(sorted)
}

// IsOrderPreserving reports whether the mapping assigns strictly increasing
// codes along the given ascending value order, i.e. whether range
// predicates "j < A < i" can be evaluated on codes directly instead of
// being rewritten to IN-lists.
func IsOrderPreserving[V comparable](m *Mapping[V], sorted []V) (bool, error) {
	prev := int64(-1)
	for _, v := range sorted {
		c, ok := m.CodeOf(v)
		if !ok {
			return false, fmt.Errorf("encoding: value %v not in mapping", v)
		}
		if int64(c) <= prev {
			return false, nil
		}
		prev = int64(c)
	}
	return true, nil
}

// OptimizeOrderPreserving searches for a total-order preserving encoding of
// the sorted domain into k-bit codes that minimizes the workload cost of
// the given predicates — the paper's Figure 6 construction, where the
// mapping both preserves 101<102<...<106 and makes IN{101,102,104,105}
// reduce to one vector. When 2^k exceeds the domain size the search
// chooses which codes to skip; the skipped codes also serve as don't-care
// terms if opt.UseDontCares is set.
//
// The search enumerates strictly increasing code assignments (combinations
// of len(sorted) codes out of 2^k). It falls back to the identity encoding
// when the combination count exceeds a safety cap.
func OptimizeOrderPreserving[V comparable](sorted []V, predicates [][]V, k int, opt *SearchOptions) (*Mapping[V], error) {
	o := opt.withDefaults()
	n := len(sorted)
	if n == 0 {
		return nil, fmt.Errorf("encoding: empty domain")
	}
	min := int(o.minCode())
	if minK := BitsFor(n + min); k < minK {
		return nil, fmt.Errorf("encoding: k=%d too small for %d values (need %d)", k, n, minK)
	}
	space := 1 << uint(k)

	valueIdx := make(map[V]int, n)
	for i, v := range sorted {
		if _, dup := valueIdx[v]; dup {
			return nil, fmt.Errorf("encoding: duplicate value %v", v)
		}
		valueIdx[v] = i
	}
	predIdx := make([][]int, len(predicates))
	for i, p := range predicates {
		predIdx[i] = make([]int, len(p))
		for j, v := range p {
			vi, ok := valueIdx[v]
			if !ok {
				return nil, fmt.Errorf("encoding: predicate %d references value %v outside the domain", i, v)
			}
			predIdx[i][j] = vi
		}
	}

	build := func(codes []uint32) *Mapping[V] {
		m := NewMapping[V](k)
		for i, v := range sorted {
			m.MustAdd(v, codes[i])
		}
		return m
	}

	identity := make([]uint32, n)
	for i := range identity {
		identity[i] = uint32(i + min)
	}
	if !binomialAtMost(space-min, n, 300000) {
		return build(identity), nil
	}

	costOf := func(codes []uint32) int {
		var dc []uint32
		if o.UseDontCares && n+min < space {
			inUse := make(map[uint32]bool, n)
			for _, c := range codes {
				inUse[c] = true
			}
			for c := uint32(min); c < uint32(space); c++ {
				if !inUse[c] {
					dc = append(dc, c)
				}
			}
		}
		total := 0
		for _, p := range predIdx {
			sel := make([]uint32, len(p))
			for j, vi := range p {
				sel[j] = codes[vi]
			}
			total += boolmin.Minimize(k, sel, dc).AccessCost()
		}
		return total
	}

	best := append([]uint32(nil), identity...)
	bestCost := costOf(identity)
	combinations(space-min, n, func(idx []int) bool {
		codes := make([]uint32, n)
		for i, c := range idx {
			codes[i] = uint32(c + min) // idx is ascending, so codes are increasing
		}
		if c := costOf(codes); c < bestCost {
			bestCost = c
			copy(best, codes)
		}
		return true
	})
	return build(best), nil
}
