package encoding

import (
	"fmt"
	"sort"
)

// Interval is a half-open integer interval [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x int64) bool { return x >= iv.Lo && x < iv.Hi }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Lo >= iv.Hi }

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// PartitionRanges divides the attribute domain [lo, hi) into the disjoint
// partitions induced by the predefined range selections, as in Figure 7 of
// the paper: every predicate boundary starts a new partition, so each
// predicate is exactly a union of partitions.
func PartitionRanges(lo, hi int64, preds []Interval) ([]Interval, error) {
	if lo >= hi {
		return nil, fmt.Errorf("encoding: empty domain [%d,%d)", lo, hi)
	}
	cuts := map[int64]bool{lo: true, hi: true}
	for _, p := range preds {
		if p.Empty() {
			return nil, fmt.Errorf("encoding: empty predicate range %v", p)
		}
		if p.Lo < lo || p.Hi > hi {
			return nil, fmt.Errorf("encoding: predicate %v outside domain [%d,%d)", p, lo, hi)
		}
		cuts[p.Lo] = true
		cuts[p.Hi] = true
	}
	points := make([]int64, 0, len(cuts))
	for c := range cuts {
		points = append(points, c)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	out := make([]Interval, 0, len(points)-1)
	for i := 0; i+1 < len(points); i++ {
		out = append(out, Interval{Lo: points[i], Hi: points[i+1]})
	}
	return out, nil
}

// RangeEncoding builds the paper's range-based encoded bitmap index
// groundwork: partition the domain by the predefined selections, then find
// an encoding of the partitions that is optimized (well-defined where
// possible) with respect to each selection's partition set. It returns the
// mapping over intervals and the partition list in domain order.
func RangeEncoding(lo, hi int64, preds []Interval, opt *SearchOptions) (*Mapping[Interval], []Interval, error) {
	parts, err := PartitionRanges(lo, hi, preds)
	if err != nil {
		return nil, nil, err
	}
	predSets := make([][]Interval, len(preds))
	for i, p := range preds {
		for _, part := range parts {
			if part.Lo >= p.Lo && part.Hi <= p.Hi {
				predSets[i] = append(predSets[i], part)
			}
		}
	}
	m, err := FindEncoding(parts, predSets, opt)
	if err != nil {
		return nil, nil, err
	}
	return m, parts, nil
}

// IntervalFor returns the partition containing x, for translating a raw
// attribute value into its encoded interval.
func IntervalFor(parts []Interval, x int64) (Interval, bool) {
	i := sort.Search(len(parts), func(i int) bool { return parts[i].Hi > x })
	if i < len(parts) && parts[i].Contains(x) {
		return parts[i], true
	}
	return Interval{}, false
}
