package encoding_test

import (
	"fmt"

	"repro/internal/encoding"
)

// ExampleFindEncoding searches for a well-defined encoding with respect
// to the paper's Figure 3 selections: both reduce to one vector.
func ExampleFindEncoding() {
	values := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	sel1 := []string{"a", "b", "c", "d"}
	sel2 := []string{"c", "d", "e", "f"}
	m, err := encoding.FindEncoding(values, [][]string{sel1, sel2}, nil)
	if err != nil {
		panic(err)
	}
	cost, _ := encoding.Cost(m, [][]string{sel1, sel2}, false)
	fmt.Println("total vectors for both selections:", cost)
	// Output:
	// total vectors for both selections: 2
}

// ExampleDistance shows Definition 2.2's binary distance.
func ExampleDistance() {
	fmt.Println(encoding.Distance(0b011, 0b111))
	// Output:
	// 1
}

// ExampleMineWorkload extracts frequency-weighted hot subdomains from a
// query log.
func ExampleMineWorkload() {
	history := []encoding.WorkloadEntry[string]{
		{Values: []string{"de", "fr"}},
		{Values: []string{"fr", "de"}},
		{Values: []string{"us", "ca"}},
	}
	mined := encoding.MineWorkload(history, 1)
	for _, m := range mined {
		fmt.Println(m.Values, "x", m.Count)
	}
	// Output:
	// [de fr] x 2
	// [ca us] x 1
}

// ExampleConstructWellDefined builds a guaranteed-optimal encoding for a
// power-of-two subdomain without searching.
func ExampleConstructWellDefined() {
	values := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	hot := []string{"b", "e", "g", "a"}
	m, err := encoding.ConstructWellDefined(values, hot, false)
	if err != nil {
		panic(err)
	}
	ok, _ := encoding.IsWellDefined(m, hot)
	cost, _ := encoding.Cost(m, [][]string{hot}, false)
	fmt.Printf("well-defined=%v, vectors=%d\n", ok, cost)
	// Output:
	// well-defined=true, vectors=1
}
