package encoding

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/boolmin"
)

// SearchOptions tunes FindEncoding. The zero value gives sensible defaults.
type SearchOptions struct {
	// UseDontCares lets the cost function treat unassigned codes as
	// don't-care terms during logical reduction (footnote 3 of the paper).
	UseDontCares bool
	// ReserveZeroCode keeps code 0 unassigned (and excluded from the
	// don't-care set), per Theorem 2.1's reservation of 0 for void
	// tuples. The code space is sized to len(values)+1 accordingly.
	ReserveZeroCode bool
	// Weights gives each predicate a relative evaluation frequency (the
	// output of workload mining); nil weighs every predicate equally.
	// When set, its length must match the predicate count.
	Weights []int
	// ExactLimit is the maximum domain size for which the exhaustive
	// permutation search runs. Defaults to 8 (8! = 40320 assignments).
	ExactLimit int
	// SwapBudget bounds the local-search improvement passes after the
	// heuristic construction. Defaults to 400.
	SwapBudget int
	// Seed drives the local search's randomization. Defaults to 1 so runs
	// are reproducible.
	Seed int64
}

func (o *SearchOptions) withDefaults() SearchOptions {
	var out SearchOptions
	if o != nil {
		out = *o
	}
	if out.ExactLimit == 0 {
		out.ExactLimit = 8
	}
	if out.SwapBudget == 0 {
		out.SwapBudget = 400
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// minCode returns the smallest assignable code under the options.
func (o SearchOptions) minCode() uint32 {
	if o.ReserveZeroCode {
		return 1
	}
	return 0
}

// Cost returns the paper's workload cost of a mapping: the total number of
// bitmap vectors read across all predicates, each predicate's retrieval
// expression minimized by logical reduction first. Lower is better;
// Theorems 2.2/2.3 say a well-defined encoding minimizes this.
//
// When useDontCares is set, every unassigned code is treated as a
// don't-care. Callers whose mapping reserves code 0 for void tuples should
// use CostReservedZero instead so the void code stays in the off-set.
func Cost[V comparable](m *Mapping[V], predicates [][]V, useDontCares bool) (int, error) {
	return cost(m, predicates, useDontCares, false)
}

// CostReservedZero is Cost for mappings that reserve code 0 for void
// tuples: code 0 is never treated as a don't-care, so reduced expressions
// stay false on voided rows (Theorem 2.1).
func CostReservedZero[V comparable](m *Mapping[V], predicates [][]V, useDontCares bool) (int, error) {
	return cost(m, predicates, useDontCares, true)
}

func cost[V comparable](m *Mapping[V], predicates [][]V, useDontCares, reserveZero bool) (int, error) {
	return weightedCost(m, predicates, nil, useDontCares, reserveZero)
}

// WeightedCost is Cost with per-predicate frequencies: the total is
// Σ weight_i · c_e(predicate_i), the objective workload mining produces.
func WeightedCost[V comparable](m *Mapping[V], predicates [][]V, weights []int, useDontCares, reserveZero bool) (int, error) {
	return weightedCost(m, predicates, weights, useDontCares, reserveZero)
}

func weightedCost[V comparable](m *Mapping[V], predicates [][]V, weights []int, useDontCares, reserveZero bool) (int, error) {
	if weights != nil && len(weights) != len(predicates) {
		return 0, fmt.Errorf("encoding: %d weights for %d predicates", len(weights), len(predicates))
	}
	total := 0
	var dc []uint32
	if useDontCares {
		for _, c := range m.FreeCodes() {
			if reserveZero && c == 0 {
				continue
			}
			dc = append(dc, c)
		}
	}
	for i, p := range predicates {
		codes, err := m.CodesOf(p)
		if err != nil {
			return 0, fmt.Errorf("predicate %d: %w", i, err)
		}
		e := boolmin.Minimize(m.K(), codes, dc)
		w := 1
		if weights != nil {
			w = weights[i]
		}
		total += e.AccessCost() * w
	}
	return total, nil
}

// FindEncoding builds a mapping from values to k-bit codes
// (k = ceil(log2 (len(values) + reserved))) that minimizes the total
// vector-access cost of the given predicate subdomains. Small domains are
// solved by exhaustive arrangement search; larger ones by a
// signature-grouping + Gray-packing heuristic refined with randomized
// local search. This reconstructs the "heuristics for finding a
// well-defined encoding" that the paper defers to its tech report [18].
func FindEncoding[V comparable](values []V, predicates [][]V, opt *SearchOptions) (*Mapping[V], error) {
	o := opt.withDefaults()
	if len(values) == 0 {
		return nil, fmt.Errorf("encoding: empty domain")
	}
	seen := make(map[V]bool, len(values))
	for _, v := range values {
		if seen[v] {
			return nil, fmt.Errorf("encoding: duplicate value %v", v)
		}
		seen[v] = true
	}
	for i, p := range predicates {
		for _, v := range p {
			if !seen[v] {
				return nil, fmt.Errorf("encoding: predicate %d references value %v outside the domain", i, v)
			}
		}
	}
	if o.Weights != nil && len(o.Weights) != len(predicates) {
		return nil, fmt.Errorf("encoding: %d weights for %d predicates", len(o.Weights), len(predicates))
	}

	k := BitsFor(len(values) + int(o.minCode()))
	if len(values) <= o.ExactLimit {
		if m := exactSearch(values, predicates, k, o); m != nil {
			return m, nil
		}
	}
	m := heuristicEncoding(values, predicates, k, o.minCode())
	localSearch(m, values, predicates, o)
	return m, nil
}

// exactSearch enumerates all injective assignments of values to codes in
// [minCode, 2^k) and returns the cheapest. Returns nil when the
// arrangement count is too large, letting the caller fall back to the
// heuristic.
func exactSearch[V comparable](values []V, predicates [][]V, k int, o SearchOptions) *Mapping[V] {
	n := len(values)
	space := 1 << uint(k)
	min := int(o.minCode())
	usable := space - min
	count := 1
	for i := 0; i < n; i++ {
		count *= usable - i
		if count > 400000 {
			return nil
		}
	}
	bestCost := int(^uint(0) >> 1)
	var best []uint32
	assign := make([]uint32, n)
	usedCode := make([]bool, space)

	valueIdx := make(map[V]int, n)
	for i, v := range values {
		valueIdx[v] = i
	}
	predIdx := make([][]int, len(predicates))
	for i, p := range predicates {
		predIdx[i] = make([]int, len(p))
		for j, v := range p {
			predIdx[i][j] = valueIdx[v]
		}
	}
	costOf := func() int {
		total := 0
		var dc []uint32
		if o.UseDontCares && n+min < space {
			inUse := make(map[uint32]bool, n)
			for _, c := range assign {
				inUse[c] = true
			}
			for c := uint32(min); c < uint32(space); c++ {
				if !inUse[c] {
					dc = append(dc, c)
				}
			}
		}
		for pi, p := range predIdx {
			codes := make([]uint32, len(p))
			for j, vi := range p {
				codes[j] = assign[vi]
			}
			w := 1
			if o.Weights != nil {
				w = o.Weights[pi]
			}
			total += boolmin.Minimize(k, codes, dc).AccessCost() * w
		}
		return total
	}

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if c := costOf(); c < bestCost {
				bestCost = c
				best = append([]uint32(nil), assign...)
			}
			return
		}
		for code := min; code < space; code++ {
			if usedCode[code] {
				continue
			}
			usedCode[code] = true
			assign[i] = uint32(code)
			rec(i + 1)
			usedCode[code] = false
		}
	}
	rec(0)

	m := NewMapping[V](k)
	for i, v := range values {
		m.MustAdd(v, best[i])
	}
	return m
}

// heuristicEncoding orders values by predicate-membership signature so that
// co-accessed values are adjacent, then assigns codes along the binary
// reflected Gray sequence (offset past any reserved codes). Aligned
// contiguous Gray blocks are subcubes, so a predicate whose values occupy
// an aligned block of size 2^p reduces to a single product term over k-p
// fewer vectors.
func heuristicEncoding[V comparable](values []V, predicates [][]V, k int, offset uint32) *Mapping[V] {
	n := len(values)

	// Signature: bitset of predicates containing the value.
	sig := make(map[V][]uint64, n)
	words := (len(predicates) + 63) / 64
	for _, v := range values {
		sig[v] = make([]uint64, words)
	}
	for pi, p := range predicates {
		for _, v := range p {
			sig[v][pi/64] |= 1 << (uint(pi) % 64)
		}
	}

	// Greedy ordering: start from the first value, repeatedly append the
	// unplaced value with the most similar signature to the last placed
	// one (minimal Hamming distance over predicate membership), breaking
	// ties by original order for determinism.
	placed := make([]bool, n)
	order := make([]int, 0, n)
	order = append(order, 0)
	placed[0] = true
	hamming := func(a, b []uint64) int {
		d := 0
		for i := range a {
			d += bits.OnesCount64(a[i] ^ b[i])
		}
		return d
	}
	for len(order) < n {
		last := sig[values[order[len(order)-1]]]
		best, bestD := -1, 1<<30
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			if d := hamming(last, sig[values[i]]); d < bestD {
				best, bestD = i, d
			}
		}
		order = append(order, best)
		placed[best] = true
	}

	// Split the ordering into runs of identical signature and try to align
	// each run to a power-of-two Gray boundary: an aligned contiguous Gray
	// block of size 2^p is exactly a p-dimensional subcube, making the
	// run's retrieval function a single product term. Spare codes (and the
	// reserved zero position) absorb the padding; if the space is too
	// tight, fall back to dense packing from the offset.
	space := uint32(1) << uint(k)
	equalSig := func(a, b V) bool {
		sa, sb := sig[a], sig[b]
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	var runs [][]int
	for i := 0; i < n; {
		j := i + 1
		for j < n && equalSig(values[order[i]], values[order[j]]) {
			j++
		}
		runs = append(runs, order[i:j])
		i = j
	}
	positions := make([]uint32, 0, n)
	pos := offset
	for _, run := range runs {
		align := uint32(1)
		for align*2 <= uint32(len(run)) {
			align *= 2
		}
		if rem := pos % align; rem != 0 {
			pos += align - rem
		}
		for range run {
			positions = append(positions, pos)
			pos++
		}
	}
	if pos > space {
		// Not enough slack for alignment: dense packing.
		positions = positions[:0]
		for i := 0; i < n; i++ {
			positions = append(positions, uint32(i)+offset)
		}
	}

	m := NewMapping[V](k)
	for i, vi := range order {
		m.MustAdd(values[vi], GrayCode(positions[i]))
	}
	return m
}

// localSearch hill-climbs on the workload cost by swapping code pairs and,
// when spare codes exist, rebinding values to free codes.
func localSearch[V comparable](m *Mapping[V], values []V, predicates [][]V, o SearchOptions) {
	if len(predicates) == 0 {
		return
	}
	r := rand.New(rand.NewSource(o.Seed))
	cur, err := weightedCost(m, predicates, o.Weights, o.UseDontCares, o.ReserveZeroCode)
	if err != nil {
		return
	}
	freeCodes := func() []uint32 {
		var out []uint32
		for _, c := range m.FreeCodes() {
			if o.ReserveZeroCode && c == 0 {
				continue
			}
			out = append(out, c)
		}
		return out
	}
	n := len(values)
	for iter := 0; iter < o.SwapBudget; iter++ {
		free := freeCodes()
		if len(free) > 0 && r.Intn(4) == 0 {
			// Try rebinding a random value to a random free code.
			v := values[r.Intn(n)]
			old, _ := m.CodeOf(v)
			code := free[r.Intn(len(free))]
			if m.Rebind(v, code) != nil {
				continue
			}
			if c, err := weightedCost(m, predicates, o.Weights, o.UseDontCares, o.ReserveZeroCode); err == nil && c <= cur {
				cur = c
				continue
			}
			_ = m.Rebind(v, old)
			continue
		}
		a, b := values[r.Intn(n)], values[r.Intn(n)]
		if a == b {
			continue
		}
		if m.Swap(a, b) != nil {
			continue
		}
		if c, err := weightedCost(m, predicates, o.Weights, o.UseDontCares, o.ReserveZeroCode); err == nil && c < cur {
			cur = c
			continue
		}
		_ = m.Swap(a, b) // revert
	}
}
