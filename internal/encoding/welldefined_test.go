package encoding

import (
	"testing"

	"repro/internal/boolmin"
)

// figure3a is the paper's proper mapping: a=000, c=001, g=010, e=011,
// b=100, d=101, h=110, f=111.
func figure3a() *Mapping[string] {
	m := NewMapping[string](3)
	m.MustAdd("a", 0b000)
	m.MustAdd("c", 0b001)
	m.MustAdd("g", 0b010)
	m.MustAdd("e", 0b011)
	m.MustAdd("b", 0b100)
	m.MustAdd("d", 0b101)
	m.MustAdd("h", 0b110)
	m.MustAdd("f", 0b111)
	return m
}

// figure3b is the improper mapping: a..f assigned 000..111 in the order
// a,b,c,d,g,h,e,f.
func figure3b() *Mapping[string] {
	m := NewMapping[string](3)
	m.MustAdd("a", 0b000)
	m.MustAdd("b", 0b001)
	m.MustAdd("c", 0b010)
	m.MustAdd("d", 0b011)
	m.MustAdd("g", 0b100)
	m.MustAdd("h", 0b101)
	m.MustAdd("e", 0b110)
	m.MustAdd("f", 0b111)
	return m
}

var (
	sel1 = []string{"a", "b", "c", "d"}
	sel2 = []string{"c", "d", "e", "f"}
)

func TestIsWellDefinedFigure3a(t *testing.T) {
	m := figure3a()
	for _, sel := range [][]string{sel1, sel2} {
		ok, err := IsWellDefined(m, sel)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("figure 3(a) should be well-defined wrt %v", sel)
		}
	}
	ok, err := IsWellDefinedAll(m, [][]string{sel1, sel2})
	if err != nil || !ok {
		t.Errorf("IsWellDefinedAll = %v, %v", ok, err)
	}
}

func TestIsWellDefinedFigure3b(t *testing.T) {
	m := figure3b()
	// sel1 = {a,b,c,d} -> codes {000,001,010,011}: that IS a subcube, so
	// 3(b) is well-defined wrt sel1 taken alone...
	ok, err := IsWellDefined(m, sel1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("figure 3(b) codes {000..011} form a subcube; well-defined wrt sel1")
	}
	// ...but sel2 = {c,d,e,f} -> {010,011,110,111} is also a subcube in
	// 3(b)? 010,011,110,111: varying bits are B2 and B0 with B1 fixed at 1:
	// indeed a subcube. The paper's "improper" 3(b) uses the ordering
	// a,c,g,b,e,d,h,f (its Figure 3(b) column): rebuild it faithfully.
	m = NewMapping[string](3)
	m.MustAdd("a", 0b000)
	m.MustAdd("c", 0b001)
	m.MustAdd("g", 0b010)
	m.MustAdd("b", 0b011)
	m.MustAdd("e", 0b100)
	m.MustAdd("d", 0b101)
	m.MustAdd("h", 0b110)
	m.MustAdd("f", 0b111)
	// sel1 codes {000,011,001,101}: λ(011,101)=2 pairs exist but is there a
	// prime chain? Verify the checker says NOT well-defined.
	ok, err = IsWellDefined(m, sel1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("paper's improper mapping should not be well-defined wrt sel1")
	}
	ok, err = IsWellDefined(m, sel2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("paper's improper mapping should not be well-defined wrt sel2")
	}
	// And its reduced retrieval functions need 3 vectors (paper's claim).
	codes, _ := m.CodesOf(sel1)
	if c := boolmin.Minimize(3, codes, nil).AccessCost(); c != 3 {
		t.Errorf("improper sel1 cost = %d, want 3", c)
	}
}

func TestIsWellDefinedErrors(t *testing.T) {
	m := figure3a()
	if _, err := IsWellDefined(m, []string{"nope"}); err == nil {
		t.Error("unknown value should error")
	}
	if _, err := IsWellDefined(m, []string{"a", "a"}); err == nil {
		t.Error("duplicate subdomain values should error")
	}
	ok, err := IsWellDefined(m, []string{"a"})
	if err != nil || !ok {
		t.Error("singleton subdomain should be trivially well-defined")
	}
}

func TestIsWellDefinedEvenCase(t *testing.T) {
	// Case ii: n = 6 (2^2 < 6 < 2^3, even). Build a mapping where a
	// 6-value subdomain has a 4-subset prime chain, a full chain, and
	// pairwise distance <= 3.
	m := NewMapping[string](3)
	// Subdomain: codes 000,001,011,010 (subcube) plus 110,100.
	m.MustAdd("a", 0b000)
	m.MustAdd("b", 0b001)
	m.MustAdd("c", 0b011)
	m.MustAdd("d", 0b010)
	m.MustAdd("e", 0b110)
	m.MustAdd("f", 0b100)
	m.MustAdd("g", 0b101)
	m.MustAdd("h", 0b111)
	ok, err := IsWellDefined(m, []string{"a", "b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("even case should be well-defined: chain 000,001,011,010,110,100 exists")
	}
}

func TestIsWellDefinedOddCase(t *testing.T) {
	// Case iii: n = 5 (odd). Codes 000,001,011,010,110; adding w=100 (g)
	// closes the chain 000,001,011,010,110,100.
	m := NewMapping[string](3)
	m.MustAdd("a", 0b000)
	m.MustAdd("b", 0b001)
	m.MustAdd("c", 0b011)
	m.MustAdd("d", 0b010)
	m.MustAdd("e", 0b110)
	m.MustAdd("g", 0b100)
	m.MustAdd("h", 0b111)
	m.MustAdd("i", 0b101)
	ok, err := IsWellDefined(m, []string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("odd case should be well-defined via witness w")
	}
	// Without any valid witness: a 3-value subdomain from the set the
	// paper says has no chain: {001,011,111} plus the rest far away is
	// hard to construct within k=3 since every code has neighbours; use
	// distance violation instead: subdomain {000, 011, 101} has pairwise
	// distance 2 = p+1 (p=1), so only the chain requirement can fail; any
	// w gives 4 elements with a possible chain 000,001?... verify via the
	// checker directly on a sparse mapping where no witness exists.
	m2 := NewMapping[string](4)
	m2.MustAdd("a", 0b0000)
	m2.MustAdd("b", 0b0011)
	m2.MustAdd("c", 0b0101)
	m2.MustAdd("w", 0b1111) // only candidate witness, too far away
	ok, err = IsWellDefined(m2, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("no witness can complete a chain here; should not be well-defined")
	}
}

// Theorem 2.2 (spot check): for subdomains where the mapping is
// well-defined per case i, the reduced retrieval function reaches the
// information-theoretic minimum number of vectors.
func TestTheorem22OnSubcubeSelections(t *testing.T) {
	m := figure3a()
	for _, sel := range [][]string{sel1, sel2} {
		codes, _ := m.CodesOf(sel)
		got := boolmin.Minimize(3, codes, nil).AccessCost()
		want := boolmin.MinimalAccessCost(3, codes, nil)
		if got != want {
			t.Errorf("sel %v: cost %d, optimal %d", sel, got, want)
		}
		if got != 1 {
			t.Errorf("sel %v: cost %d, paper says 1", sel, got)
		}
	}
}
