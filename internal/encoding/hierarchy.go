package encoding

import (
	"fmt"
	"sort"
)

// Hierarchy models a dimension hierarchy in a star schema (Section 2.3,
// Figure 4/5): leaf values (e.g. branches) grouped by the member sets of
// higher hierarchy elements (companies, alliances). Relationships may be
// m:N — a leaf can belong to several parents, as in the paper's example
// where branches {3,4} belong to both company a and company d.
type Hierarchy[V comparable] struct {
	// Leaves is the domain of the indexed attribute, e.g. all branches.
	Leaves []V
	// Levels maps each hierarchy element name to its leaf member set.
	// Multi-level hierarchies are composed with ExpandLevel before being
	// stored here, so every element is expressed directly over leaves.
	Levels []HierarchyLevel[V]
}

// HierarchyLevel is one hierarchy element class (e.g. "company").
type HierarchyLevel[V comparable] struct {
	Name    string
	Members map[string][]V // element name -> leaf members
}

// ExpandLevel composes a level defined over the elements of a lower level
// into direct leaf membership: groups maps element -> lower-element names,
// base maps lower-element name -> leaves. The paper's alliances, defined
// over companies, expand to branch sets this way.
func ExpandLevel[V comparable](groups map[string][]string, base map[string][]V) (map[string][]V, error) {
	out := make(map[string][]V, len(groups))
	for elem, subs := range groups {
		seen := make(map[V]bool)
		var leaves []V
		for _, s := range subs {
			members, ok := base[s]
			if !ok {
				return nil, fmt.Errorf("encoding: hierarchy element %q references unknown member %q", elem, s)
			}
			for _, l := range members {
				if !seen[l] {
					seen[l] = true
					leaves = append(leaves, l)
				}
			}
		}
		out[elem] = leaves
	}
	return out, nil
}

// Predicates returns the selection predicate set P of the paper's
// hierarchy-encoding construction: one "leaf IN members(e)" subdomain per
// hierarchy element e, across all levels, in deterministic order.
func (h *Hierarchy[V]) Predicates() [][]V {
	var out [][]V
	for _, lvl := range h.Levels {
		names := make([]string, 0, len(lvl.Members))
		for name := range lvl.Members {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, lvl.Members[name])
		}
	}
	return out
}

// FindHierarchyEncoding builds an encoding of the leaves optimized for
// selections along hierarchy elements — the paper's hierarchy encoding.
// With such a mapping, roll-ups like "alliance = X" reduce to expressions
// over few bitmap vectors instead of one min-term per leaf.
func FindHierarchyEncoding[V comparable](h *Hierarchy[V], opt *SearchOptions) (*Mapping[V], error) {
	for _, lvl := range h.Levels {
		for name, members := range lvl.Members {
			if len(members) == 0 {
				return nil, fmt.Errorf("encoding: hierarchy element %s.%s has no members", lvl.Name, name)
			}
		}
	}
	return FindEncoding(h.Leaves, h.Predicates(), opt)
}
