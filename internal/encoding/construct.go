package encoding

import (
	"fmt"
	"math/bits"
)

// ConstructWellDefined deterministically builds a mapping that is
// well-defined (Definition 2.5, case i) with respect to one subdomain
// whose size is a power of two: the subdomain's codes occupy an aligned
// block of the binary reflected Gray sequence, which is exactly an
// axis-aligned subcube, hence admits a prime chain, and its retrieval
// function reduces to a single product term over k − log2|s| vectors —
// the Theorem 2.2 optimum — with no search at all.
//
// reserveZero keeps code 0 unassigned for void tuples (Theorem 2.1).
// Subdomains of other sizes need the general FindEncoding search.
func ConstructWellDefined[V comparable](values, subdomain []V, reserveZero bool) (*Mapping[V], error) {
	n := len(subdomain)
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("encoding: subdomain size %d is not a power of two; use FindEncoding", n)
	}
	inSub := make(map[V]bool, n)
	for _, v := range subdomain {
		if inSub[v] {
			return nil, fmt.Errorf("encoding: duplicate subdomain value %v", v)
		}
		inSub[v] = true
	}
	seen := make(map[V]bool, len(values))
	for _, v := range values {
		if seen[v] {
			return nil, fmt.Errorf("encoding: duplicate value %v", v)
		}
		seen[v] = true
	}
	for _, v := range subdomain {
		if !seen[v] {
			return nil, fmt.Errorf("encoding: subdomain value %v outside the domain", v)
		}
	}

	reserve := 0
	if reserveZero {
		reserve = 1
	}
	k := BitsFor(len(values) + reserve)
	space := 1 << uint(k)
	// The aligned Gray block [blockStart, blockStart+n) is a subcube.
	// With zero reserved, use the second block so Gray position 0 (code
	// 0) stays free; the block must still fit.
	blockStart := 0
	if reserveZero {
		blockStart = n
		if blockStart+n > space {
			// Not enough room above; widen by one bit.
			k++
			space = 1 << uint(k)
		}
	}

	m := NewMapping[V](k)
	for i, v := range subdomain {
		m.MustAdd(v, GrayCode(uint32(blockStart+i)))
	}
	// Fill the rest: positions below the block (skipping 0 when
	// reserved), then above it.
	pos := 0
	if reserveZero {
		pos = 1
	}
	next := func() (uint32, error) {
		for {
			if pos >= space {
				return 0, fmt.Errorf("encoding: out of codes (internal sizing error)")
			}
			if pos >= blockStart && pos < blockStart+n {
				pos = blockStart + n
				continue
			}
			p := pos
			pos++
			return GrayCode(uint32(p)), nil
		}
	}
	for _, v := range values {
		if inSub[v] {
			continue
		}
		code, err := next()
		if err != nil {
			return nil, err
		}
		m.MustAdd(v, code)
	}
	return m, nil
}

// SubcubeCost returns the guaranteed retrieval cost of the constructed
// subdomain: k − log2 n vectors.
func SubcubeCost(k, n int) int {
	if n <= 0 {
		return k
	}
	return k - (bits.Len(uint(n)) - 1)
}
