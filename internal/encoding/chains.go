package encoding

import (
	"math/bits"
)

// Distance is the binary distance λ of Definition 2.2: the number of bit
// positions in which x and y differ (Hamming distance).
func Distance(x, y uint32) int {
	return bits.OnesCount32(x ^ y)
}

// GrayCode returns the i-th binary reflected Gray code. Consecutive Gray
// codes have binary distance 1, and the sequence 0..2^p-1 forms a prime
// chain on any p-dimensional subcube.
func GrayCode(i uint32) uint32 { return i ^ (i >> 1) }

// IsChain reports whether the sequence seq is a chain per Definition 2.3:
// at least two distinct codes, consecutive elements at binary distance 1,
// and the last element at distance 1 from the first (the chain is cyclic).
func IsChain(seq []uint32) bool {
	n := len(seq)
	if n < 2 {
		return false
	}
	seen := make(map[uint32]bool, n)
	for i, c := range seq {
		if seen[c] {
			return false
		}
		seen[c] = true
		next := seq[(i+1)%n]
		if Distance(c, next) != 1 {
			return false
		}
	}
	return true
}

// FindChain searches for a chain ordering of the given code set: a
// Hamiltonian cycle in the subgraph of the hypercube induced by the set.
// It returns the ordering and true on success. Backtracking; intended for
// the small subdomains that appear in selection predicates.
func FindChain(set []uint32) ([]uint32, bool) {
	n := len(set)
	if n < 2 {
		return nil, false
	}
	if n == 2 {
		// Definition 2.3 closes the cycle over the single edge: a pair at
		// binary distance 1 is a chain.
		if set[0] != set[1] && Distance(set[0], set[1]) == 1 {
			return []uint32{set[0], set[1]}, true
		}
		return nil, false
	}
	// A Hamiltonian cycle in a bipartite graph (the hypercube is bipartite
	// by parity) requires an even number of vertices and equal parts.
	odd := 0
	for _, c := range set {
		if bits.OnesCount32(c)%2 == 1 {
			odd++
		}
	}
	if n%2 != 0 || odd*2 != n {
		return nil, false
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Distance(set[i], set[j]) == 1 {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	for i := range adj {
		if len(adj[i]) < 2 {
			return nil, false
		}
	}
	path := make([]int, 0, n)
	used := make([]bool, n)
	path = append(path, 0)
	used[0] = true
	var dfs func() bool
	dfs = func() bool {
		if len(path) == n {
			// Cycle closes only if the last vertex neighbours vertex 0.
			return Distance(set[path[n-1]], set[0]) == 1
		}
		last := path[len(path)-1]
		for _, nb := range adj[last] {
			if used[nb] {
				continue
			}
			used[nb] = true
			path = append(path, nb)
			if dfs() {
				return true
			}
			path = path[:len(path)-1]
			used[nb] = false
		}
		return false
	}
	if !dfs() {
		return nil, false
	}
	out := make([]uint32, n)
	for i, idx := range path {
		out[i] = set[idx]
	}
	return out, true
}

// IsPrimeChainSet reports whether the code set admits a prime chain per
// Definition 2.4: |set| = 2^p, all pairwise binary distances are at most p,
// and a chain exists on the set.
func IsPrimeChainSet(set []uint32) bool {
	n := len(set)
	if n < 2 || n&(n-1) != 0 {
		return false
	}
	p := bits.Len(uint(n)) - 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Distance(set[i], set[j]) > p {
				return false
			}
		}
	}
	_, ok := FindChain(set)
	return ok
}

// IsSubcube reports whether the code set is exactly an axis-aligned subcube
// of the hypercube, and if so returns its (value, mask) description: the
// set equals { x : x &^ mask == value }. Subcubes are the sets whose
// retrieval function reduces to a single product term; every subcube of
// dimension >= 1 admits a prime chain (a Gray cycle over its free bits).
func IsSubcube(set []uint32) (value, mask uint32, ok bool) {
	n := len(set)
	if n == 0 || n&(n-1) != 0 {
		return 0, 0, false
	}
	var and, or uint32 = ^uint32(0), 0
	for _, c := range set {
		and &= c
		or |= c
	}
	mask = and ^ or // bits that vary
	if 1<<uint(bits.OnesCount32(mask)) != uint32(n) {
		return 0, 0, false
	}
	value = and // the fixed bits (varying bits are 0 in and)
	seen := make(map[uint32]bool, n)
	for _, c := range set {
		if (c^value)&^mask != 0 || seen[c] {
			return 0, 0, false
		}
		seen[c] = true
	}
	return value, mask, true
}

// SubcubeChain returns a prime chain over the subcube described by
// (value, mask): a Gray cycle over the varying bit positions. The subcube
// must have dimension >= 1.
func SubcubeChain(value, mask uint32) []uint32 {
	var positions []int
	for i := 0; i < 32; i++ {
		if mask&(1<<uint(i)) != 0 {
			positions = append(positions, i)
		}
	}
	p := len(positions)
	if p == 0 {
		panic("encoding: SubcubeChain on a 0-dimensional subcube")
	}
	out := make([]uint32, 1<<uint(p))
	for i := range out {
		g := GrayCode(uint32(i))
		c := value &^ mask
		for bi, pos := range positions {
			if g&(1<<uint(bi)) != 0 {
				c |= 1 << uint(pos)
			}
		}
		out[i] = c
	}
	return out
}
