package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistancePaperExample(t *testing.T) {
	// Paper: a = 011, b = 111, λ(a,b) = 1.
	if got := Distance(0b011, 0b111); got != 1 {
		t.Fatalf("Distance = %d, want 1", got)
	}
	if Distance(0, 0) != 0 || Distance(0b101, 0b010) != 3 {
		t.Fatal("Distance wrong on basic cases")
	}
}

func TestGrayCodeAdjacency(t *testing.T) {
	for i := uint32(0); i < 1024; i++ {
		if Distance(GrayCode(i), GrayCode(i+1)) != 1 {
			t.Fatalf("Gray codes %d,%d not adjacent", i, i+1)
		}
	}
	// Gray codes of 0..2^p-1 exactly cover {0..2^p-1}.
	seen := make(map[uint32]bool)
	for i := uint32(0); i < 16; i++ {
		g := GrayCode(i)
		if g >= 16 || seen[g] {
			t.Fatalf("GrayCode(%d) = %d not a permutation of 0..15", i, g)
		}
		seen[g] = true
	}
}

func TestIsChainPaperExample(t *testing.T) {
	// Paper: <000,100,110,010> is a (prime) chain on {000,110,010,100}.
	if !IsChain([]uint32{0b000, 0b100, 0b110, 0b010}) {
		t.Fatal("paper's chain rejected")
	}
	// Not cyclic at the wrap: <000,001,011,111> has λ(111,000)=3.
	if IsChain([]uint32{0b000, 0b001, 0b011, 0b111}) {
		t.Fatal("non-cyclic sequence accepted")
	}
	if IsChain([]uint32{0b0}) || IsChain(nil) {
		t.Fatal("short sequences are not chains")
	}
	if IsChain([]uint32{0b00, 0b01, 0b00, 0b01}) {
		t.Fatal("sequence with duplicates accepted")
	}
}

func TestFindChainPaperExamples(t *testing.T) {
	// A chain exists on {000,110,010,100}.
	seq, ok := FindChain([]uint32{0b000, 0b110, 0b010, 0b100})
	if !ok || !IsChain(seq) {
		t.Fatalf("FindChain failed on paper's prime-chain set: %v %v", seq, ok)
	}
	// Paper: no chain can be defined on {001, 011, 111}.
	if _, ok := FindChain([]uint32{0b001, 0b011, 0b111}); ok {
		t.Fatal("FindChain found a chain where the paper says none exists")
	}
	if _, ok := FindChain([]uint32{0b0}); ok {
		t.Fatal("single element cannot form a chain")
	}
	// Parity argument: two codes at distance 2 cannot chain.
	if _, ok := FindChain([]uint32{0b00, 0b11}); ok {
		t.Fatal("distance-2 pair cannot form a chain")
	}
	// A distance-1 pair is a chain (sequence of two).
	seq, ok = FindChain([]uint32{0b00, 0b01})
	if !ok || !IsChain(seq) {
		t.Fatal("distance-1 pair should chain")
	}
}

func TestIsPrimeChainSet(t *testing.T) {
	// Paper's example set is a prime chain set (p=2, all distances <= 2).
	if !IsPrimeChainSet([]uint32{0b000, 0b110, 0b010, 0b100}) {
		t.Fatal("paper's prime chain set rejected")
	}
	// {001,011,111}: size not a power of two.
	if IsPrimeChainSet([]uint32{0b001, 0b011, 0b111}) {
		t.Fatal("non-power-of-two set accepted")
	}
	// Size 4 with a pairwise distance 3 violates p=2.
	if IsPrimeChainSet([]uint32{0b000, 0b001, 0b011, 0b111}) {
		t.Fatal("set with distance-3 pair accepted as prime")
	}
	// A 2-subcube is always a prime chain set.
	if !IsPrimeChainSet([]uint32{0b100, 0b101, 0b110, 0b111}) {
		t.Fatal("subcube rejected")
	}
}

func TestIsSubcube(t *testing.T) {
	v, m, ok := IsSubcube([]uint32{0b100, 0b101, 0b110, 0b111})
	if !ok || v != 0b100 || m != 0b011 {
		t.Fatalf("IsSubcube = %b,%b,%v", v, m, ok)
	}
	if _, _, ok := IsSubcube([]uint32{0b000, 0b011}); ok {
		t.Fatal("diagonal pair is not a subcube")
	}
	if _, _, ok := IsSubcube([]uint32{0b000, 0b001, 0b010}); ok {
		t.Fatal("size-3 set is not a subcube")
	}
	if _, _, ok := IsSubcube([]uint32{0b101}); !ok {
		t.Fatal("singleton is a 0-dim subcube")
	}
	if _, _, ok := IsSubcube(nil); ok {
		t.Fatal("empty set is not a subcube")
	}
}

func TestSubcubeChain(t *testing.T) {
	seq := SubcubeChain(0b100, 0b011)
	if len(seq) != 4 || !IsChain(seq) {
		t.Fatalf("SubcubeChain not a chain: %v", seq)
	}
	for _, c := range seq {
		if c&^0b011 != 0b100 {
			t.Fatalf("code %b outside subcube", c)
		}
	}
	if !IsPrimeChainSet(seq) {
		t.Fatal("SubcubeChain output not a prime chain set")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("0-dim SubcubeChain should panic")
		}
	}()
	SubcubeChain(0b1, 0)
}

// Property: every subcube admits a prime chain via SubcubeChain, and
// IsPrimeChainSet agrees.
func TestPropSubcubesArePrimeChains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		d := 1 + r.Intn(k-1)
		mask := uint32(0)
		for _, pos := range r.Perm(k)[:d] {
			mask |= 1 << uint(pos)
		}
		value := uint32(r.Intn(1<<uint(k))) &^ mask
		seq := SubcubeChain(value, mask)
		return IsChain(seq) && IsPrimeChainSet(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: FindChain's output, when it exists, is always a valid chain
// over exactly the input set.
func TestPropFindChainSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		n := 2 + r.Intn(6)
		if n > 1<<uint(k) {
			n = 1 << uint(k)
		}
		perm := r.Perm(1 << uint(k))
		set := make([]uint32, n)
		for i := 0; i < n; i++ {
			set[i] = uint32(perm[i])
		}
		seq, ok := FindChain(set)
		if !ok {
			return true
		}
		if !IsChain(seq) || len(seq) != len(set) {
			return false
		}
		have := make(map[uint32]bool)
		for _, c := range seq {
			have[c] = true
		}
		for _, c := range set {
			if !have[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
