package encoding

import (
	"strings"
	"testing"
)

func TestBitsFor(t *testing.T) {
	cases := map[int]int{
		0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4,
		3000: 12, 12000: 14, // the paper's PRODUCTS example: 12000 -> 14
	}
	for m, want := range cases {
		if got := BitsFor(m); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestMappingAddErrors(t *testing.T) {
	m := NewMapping[string](2)
	if err := m.Add("a", 0b00); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("a", 0b01); err == nil {
		t.Error("duplicate value accepted")
	}
	if err := m.Add("b", 0b00); err == nil {
		t.Error("duplicate code accepted")
	}
	if err := m.Add("b", 0b100); err == nil {
		t.Error("over-wide code accepted")
	}
	if err := m.Add("b", 0b01); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestMappingLookups(t *testing.T) {
	m := MappingOf([]string{"a", "b", "c"})
	if m.K() != 2 {
		t.Fatalf("K = %d, want 2", m.K())
	}
	c, ok := m.CodeOf("b")
	if !ok || c != 1 {
		t.Fatalf("CodeOf(b) = %d,%v", c, ok)
	}
	v, ok := m.ValueOf(2)
	if !ok || v != "c" {
		t.Fatalf("ValueOf(2) = %v,%v", v, ok)
	}
	if _, ok := m.CodeOf("z"); ok {
		t.Error("CodeOf unknown value should fail")
	}
	if !m.Contains("a") || m.Contains("z") {
		t.Error("Contains wrong")
	}
	codes, err := m.CodesOf([]string{"c", "a"})
	if err != nil || len(codes) != 2 || codes[0] != 2 || codes[1] != 0 {
		t.Fatalf("CodesOf = %v, %v", codes, err)
	}
	if _, err := m.CodesOf([]string{"zzz"}); err == nil {
		t.Error("CodesOf unknown value should fail")
	}
	vals := m.Values()
	if len(vals) != 3 || vals[0] != "a" || vals[2] != "c" {
		t.Fatalf("Values = %v", vals)
	}
	free := m.FreeCodes()
	if len(free) != 1 || free[0] != 3 {
		t.Fatalf("FreeCodes = %v, want [3]", free)
	}
}

func TestMappingWiden(t *testing.T) {
	m := MappingOf([]string{"a", "b", "c"})
	w := m.Widen(3)
	if w.K() != 3 || w.Len() != 3 {
		t.Fatal("Widen lost entries or wrong k")
	}
	if c, _ := w.CodeOf("c"); c != 2 {
		t.Fatalf("Widen changed code of c: %d", c)
	}
	if err := w.Add("d", 0b100); err != nil {
		t.Fatalf("Widen should free codes: %v", err)
	}
	// Original untouched.
	if m.K() != 2 || m.Contains("d") {
		t.Fatal("Widen mutated original")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("narrowing Widen should panic")
		}
	}()
	w.Widen(2)
}

func TestMappingSwapRebindClone(t *testing.T) {
	m := MappingOf([]string{"a", "b", "c"})
	if err := m.Swap("a", "c"); err != nil {
		t.Fatal(err)
	}
	ca, _ := m.CodeOf("a")
	cc, _ := m.CodeOf("c")
	if ca != 2 || cc != 0 {
		t.Fatalf("after swap a=%d c=%d", ca, cc)
	}
	if v, _ := m.ValueOf(2); v != "a" {
		t.Fatal("reverse map not updated by Swap")
	}
	if err := m.Swap("a", "nope"); err == nil {
		t.Error("Swap with unknown value should fail")
	}
	if err := m.Rebind("b", 3); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.ValueOf(1); ok {
		t.Fatalf("old code still mapped to %v after Rebind", v)
	}
	if err := m.Rebind("b", 0); err == nil {
		t.Error("Rebind onto taken code should fail")
	}
	if err := m.Rebind("nope", 1); err == nil {
		t.Error("Rebind of unknown value should fail")
	}
	cl := m.Clone()
	_ = cl.Rebind("b", 1)
	if c, _ := m.CodeOf("b"); c != 3 {
		t.Fatal("Clone shares state with original")
	}
}

func TestMappingString(t *testing.T) {
	m := MappingOf([]string{"a", "b", "c"})
	s := m.String()
	if !strings.Contains(s, "a\t00") || !strings.Contains(s, "c\t10") {
		t.Fatalf("String output unexpected:\n%s", s)
	}
}
