package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The Definition 2.5 checker uses exact subset enumeration for small
// inputs and an axis-aligned-subcube scan as the large-input fallback.
// The fallback is sufficient but not complete; this property pins the
// containment: whenever the subcube scan finds a prime-chain subset, the
// exact enumeration must agree.
func TestPropSubcubeScanImpliesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 3 + r.Intn(2)
		n := 4 + r.Intn(8)
		if n > 1<<uint(k) {
			n = 1 << uint(k)
		}
		perm := r.Perm(1 << uint(k))
		codes := make([]uint32, n)
		for i := 0; i < n; i++ {
			codes[i] = uint32(perm[i])
		}
		for _, want := range []int{2, 4} {
			if want > n {
				continue
			}
			viaSubcube := hasSubcubeSubset(codes, want)
			viaEnum := false
			combinations(n, want, func(idx []int) bool {
				sub := make([]uint32, want)
				for i, j := range idx {
					sub[i] = codes[j]
				}
				if IsPrimeChainSet(sub) {
					viaEnum = true
					return false
				}
				return true
			})
			if viaSubcube && !viaEnum {
				return false // the sufficient check claimed more than the definition
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Size-2 and size-4 prime chain sets are exactly the subcubes of those
// sizes (4-cycles in a hypercube are faces), so at those sizes the
// fallback is not just sufficient but equivalent.
func TestPropSmallPrimeChainsAreSubcubes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		size := []int{2, 4}[r.Intn(2)]
		if size > 1<<uint(k) {
			size = 2
		}
		perm := r.Perm(1 << uint(k))
		sub := make([]uint32, size)
		for i := 0; i < size; i++ {
			sub[i] = uint32(perm[i])
		}
		_, _, isCube := IsSubcube(sub)
		return IsPrimeChainSet(sub) == isCube
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
