package encoding

import (
	"testing"

	"repro/internal/boolmin"
)

func TestOrderPreservingEncodingIdentity(t *testing.T) {
	sorted := []int{101, 102, 103, 104, 105, 106}
	m := OrderPreservingEncoding(sorted)
	if m.K() != 3 {
		t.Fatalf("K = %d, want 3", m.K())
	}
	ok, err := IsOrderPreserving(m, sorted)
	if err != nil || !ok {
		t.Fatalf("identity encoding should be order preserving: %v %v", ok, err)
	}
}

func TestIsOrderPreserving(t *testing.T) {
	sorted := []string{"a", "b", "c"}
	m := NewMapping[string](2)
	m.MustAdd("a", 2)
	m.MustAdd("b", 1)
	m.MustAdd("c", 3)
	ok, err := IsOrderPreserving(m, sorted)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("non-monotone mapping reported as order preserving")
	}
	if _, err := IsOrderPreserving(m, []string{"zzz"}); err == nil {
		t.Error("unknown value should error")
	}
}

// The paper's Figure 6 mapping: preserves 101<...<106 and reduces
// IN {101,102,104,105} to one vector.
func TestPaperFigure6Mapping(t *testing.T) {
	m := NewMapping[int](3)
	m.MustAdd(101, 0b000)
	m.MustAdd(102, 0b001)
	m.MustAdd(103, 0b010)
	m.MustAdd(104, 0b100)
	m.MustAdd(105, 0b101)
	m.MustAdd(106, 0b110)
	sorted := []int{101, 102, 103, 104, 105, 106}
	ok, err := IsOrderPreserving(m, sorted)
	if err != nil || !ok {
		t.Fatalf("figure 6 mapping should be order preserving: %v %v", ok, err)
	}
	codes, _ := m.CodesOf([]int{101, 102, 104, 105})
	if got := boolmin.Minimize(3, codes, nil).AccessCost(); got != 1 {
		t.Errorf("IN{101,102,104,105} cost = %d, paper says 1 (B1')", got)
	}
}

// OptimizeOrderPreserving must find an encoding as good as Figure 6's.
func TestOptimizeOrderPreservingFindsFigure6Quality(t *testing.T) {
	sorted := []int{101, 102, 103, 104, 105, 106}
	fav := []int{101, 102, 104, 105}
	m, err := OptimizeOrderPreserving(sorted, [][]int{fav}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsOrderPreserving(m, sorted)
	if err != nil || !ok {
		t.Fatalf("optimized mapping not order preserving: %v %v\n%s", ok, err, m)
	}
	codes, _ := m.CodesOf(fav)
	if got := boolmin.Minimize(3, codes, nil).AccessCost(); got != 1 {
		t.Errorf("optimized cost = %d, want 1\n%s", got, m)
	}
}

func TestOptimizeOrderPreservingValidation(t *testing.T) {
	if _, err := OptimizeOrderPreserving([]int{}, nil, 1, nil); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := OptimizeOrderPreserving([]int{1, 2, 3}, nil, 1, nil); err == nil {
		t.Error("k too small should error")
	}
	if _, err := OptimizeOrderPreserving([]int{1, 1}, nil, 1, nil); err == nil {
		t.Error("duplicate values should error")
	}
	if _, err := OptimizeOrderPreserving([]int{1, 2}, [][]int{{9}}, 1, nil); err == nil {
		t.Error("predicate outside domain should error")
	}
}

// With a huge code space the search falls back to the identity encoding
// but still returns a valid order-preserving mapping.
func TestOptimizeOrderPreservingFallback(t *testing.T) {
	var sorted []int
	for i := 0; i < 40; i++ {
		sorted = append(sorted, i)
	}
	m, err := OptimizeOrderPreserving(sorted, [][]int{{0, 1}}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsOrderPreserving(m, sorted)
	if err != nil || !ok {
		t.Fatal("fallback mapping not order preserving")
	}
	if m.Len() != 40 {
		t.Fatalf("mapping len = %d, want 40", m.Len())
	}
}
