package encoding

import (
	"fmt"
	"math/bits"
)

// IsWellDefined checks Definition 2.5: whether the mapping is well-defined
// with respect to the selection "A IN subdomain". Let n = |subdomain| and
// p = floor(log2 n):
//
//	 i) n = 2^p: the subdomain's codes admit a prime chain.
//	ii) 2^p < n < 2^{p+1}, n even: some 2^p-subset admits a prime chain,
//	    the whole code set admits a chain, and all pairwise binary
//	    distances are at most p+1.
//	iii) n odd: some 2^p-subset admits a prime chain, and there is a value
//	    w outside the subdomain (but in A) whose addition yields a chain
//	    with pairwise distances at most p+1.
//
// The subset searches are exact while the number of 2^p-subsets is modest
// and fall back to axis-aligned-subcube detection (a sufficient condition:
// every subcube admits a prime chain via a Gray cycle) for larger inputs.
func IsWellDefined[V comparable](m *Mapping[V], subdomain []V) (bool, error) {
	codes, err := m.CodesOf(subdomain)
	if err != nil {
		return false, err
	}
	if hasDuplicates(codes) {
		return false, fmt.Errorf("encoding: subdomain contains duplicate values")
	}
	n := len(codes)
	if n < 2 {
		// Degenerate: a single-value selection is trivially as good as the
		// encoding can make it (a full min-term). Treat as well-defined.
		return true, nil
	}
	p := bits.Len(uint(n)) - 1 // floor(log2 n)

	if n == 1<<uint(p) {
		return IsPrimeChainSet(codes), nil
	}

	if !hasPrimeChainSubset(codes, 1<<uint(p)) {
		return false, nil
	}

	if n%2 == 0 {
		if maxPairwiseDistance(codes) > p+1 {
			return false, nil
		}
		_, ok := FindChain(codes)
		return ok, nil
	}

	// n odd: try every candidate w from the rest of the domain.
	inSub := make(map[uint32]bool, n)
	for _, c := range codes {
		inSub[c] = true
	}
	for _, w := range m.Codes() {
		if inSub[w] {
			continue
		}
		ext := append(append([]uint32{}, codes...), w)
		if maxPairwiseDistance(ext) > p+1 {
			continue
		}
		if _, ok := FindChain(ext); ok {
			return true, nil
		}
	}
	return false, nil
}

// IsWellDefinedAll checks Theorem 2.3's premise: the mapping is
// well-defined with respect to every predicate subdomain in the set.
func IsWellDefinedAll[V comparable](m *Mapping[V], predicates [][]V) (bool, error) {
	for i, p := range predicates {
		ok, err := IsWellDefined(m, p)
		if err != nil {
			return false, fmt.Errorf("predicate %d: %w", i, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// hasPrimeChainSubset reports whether some size-want subset of codes forms
// a prime chain set. Exact enumeration when the number of combinations is
// small; otherwise it scans for an axis-aligned subcube of the right size,
// which is sufficient (Gray cycles) though not exhaustive.
func hasPrimeChainSubset(codes []uint32, want int) bool {
	n := len(codes)
	if want > n {
		return false
	}
	if want == 1 {
		return true // trivially; callers only use want >= 2 in practice
	}
	if binomialAtMost(n, want, 20000) {
		found := false
		combinations(n, want, func(idx []int) bool {
			sub := make([]uint32, want)
			for i, j := range idx {
				sub[i] = codes[j]
			}
			if IsPrimeChainSet(sub) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return hasSubcubeSubset(codes, want)
}

// hasSubcubeSubset reports whether some subset of codes of the given
// power-of-two size forms an axis-aligned subcube. It counts, for each
// (value,mask) subcube of dimension d, how many of the codes fall inside.
func hasSubcubeSubset(codes []uint32, want int) bool {
	d := bits.Len(uint(want)) - 1
	// Group the codes by their projection for each choice of d free bits.
	// The number of bit positions in play is at most 30 but in practice k
	// is small; enumerate masks with d bits among the used positions.
	var usedBits uint32
	for _, c := range codes {
		usedBits |= c
	}
	k := bits.Len32(usedBits)
	if k < d {
		k = d
	}
	masks := masksWithDBits(k, d)
	for _, mask := range masks {
		counts := make(map[uint32]int)
		for _, c := range codes {
			counts[c&^mask]++
		}
		for _, cnt := range counts {
			if cnt == want {
				return true
			}
		}
	}
	return false
}

func masksWithDBits(k, d int) []uint32 {
	var out []uint32
	var rec func(start int, cur uint32, left int)
	rec = func(start int, cur uint32, left int) {
		if left == 0 {
			out = append(out, cur)
			return
		}
		for i := start; i <= k-left; i++ {
			rec(i+1, cur|1<<uint(i), left-1)
		}
	}
	rec(0, 0, d)
	return out
}

func maxPairwiseDistance(codes []uint32) int {
	max := 0
	for i := 0; i < len(codes); i++ {
		for j := i + 1; j < len(codes); j++ {
			if d := Distance(codes[i], codes[j]); d > max {
				max = d
			}
		}
	}
	return max
}

func hasDuplicates(codes []uint32) bool {
	seen := make(map[uint32]bool, len(codes))
	for _, c := range codes {
		if seen[c] {
			return true
		}
		seen[c] = true
	}
	return false
}

// binomialAtMost reports whether C(n, k) <= limit without overflowing.
func binomialAtMost(n, k, limit int) bool {
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > limit {
			return false
		}
	}
	return true
}

// combinations enumerates k-subsets of {0..n-1}, calling fn with each index
// slice (reused between calls). fn returns false to stop.
func combinations(n, k int, fn func(idx []int) bool) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
