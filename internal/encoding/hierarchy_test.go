package encoding

import (
	"testing"

	"repro/internal/boolmin"
)

// paperFigure5 builds the SALESPOINT hierarchy of Figure 5: 12 branches,
// 5 companies, 3 alliances, with the m:N memberships from the paper.
func paperFigure5() (*Hierarchy[int], map[string][]int, map[string][]int) {
	companies := map[string][]int{
		"a": {1, 2, 3, 4},
		"b": {5, 6},
		"c": {7, 8},
		"d": {3, 4, 9, 10},
		"e": {9, 10, 11, 12},
	}
	alliancesOverCompanies := map[string][]string{
		"X": {"a", "b", "c"},
		"Y": {"c", "d"},
		"Z": {"d", "e"},
	}
	alliances, err := ExpandLevel(alliancesOverCompanies, companies)
	if err != nil {
		panic(err)
	}
	h := &Hierarchy[int]{
		Leaves: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		Levels: []HierarchyLevel[int]{
			{Name: "company", Members: companies},
			{Name: "alliance", Members: alliances},
		},
	}
	return h, companies, alliances
}

// paperFigure5Mapping is the paper's hand-built hierarchy encoding
// (Figure 5(b)).
func paperFigure5Mapping() *Mapping[int] {
	m := NewMapping[int](4)
	codes := map[int]uint32{
		1: 0b0000, 2: 0b0001, 3: 0b0100, 4: 0b0101,
		5: 0b0010, 6: 0b0011, 7: 0b0110, 8: 0b0111,
		9: 0b1100, 10: 0b1101, 11: 0b1111, 12: 0b1110,
	}
	for b, c := range codes {
		m.MustAdd(b, c)
	}
	return m
}

func TestExpandLevel(t *testing.T) {
	_, companies, alliances := paperFigure5()
	// Alliance X = companies {a,b,c} = branches {1..8}.
	x := alliances["X"]
	if len(x) != 8 {
		t.Fatalf("alliance X has %d branches, want 8: %v", len(x), x)
	}
	// Alliance Y = {c,d} = {7,8,3,4,9,10} — overlapping membership must
	// be deduplicated.
	if got := len(alliances["Y"]); got != 6 {
		t.Fatalf("alliance Y has %d branches, want 6", got)
	}
	// Z = {d,e} = {3,4,9,10,11,12}.
	if got := len(alliances["Z"]); got != 6 {
		t.Fatalf("alliance Z has %d branches, want 6", got)
	}
	if _, err := ExpandLevel(map[string][]string{"bad": {"nope"}}, companies); err == nil {
		t.Error("unknown member reference should error")
	}
}

// Verify the paper's own Figure 5(b) mapping delivers the costs claimed:
// "for selection alliance = X, only one bit vector is accessed".
func TestPaperFigure5MappingCosts(t *testing.T) {
	m := paperFigure5Mapping()
	_, companies, alliances := paperFigure5()

	wantCosts := map[string]int{
		// companies
		"a": 2, // {0000,0001,0100,0101} = B3'B1'
		"b": 3, // {0010,0011} = B3'B2'B1
		"c": 3, // {0110,0111} = B3'B2B1
		"d": 2, // {0100,0101,1100,1101} = B2B1'
		"e": 2, // {1100,1101,1111,1110} = B3B2
	}
	for name, members := range companies {
		codes, err := m.CodesOf(members)
		if err != nil {
			t.Fatal(err)
		}
		got := boolmin.Minimize(4, codes, nil).AccessCost()
		if got != wantCosts[name] {
			t.Errorf("company %s cost = %d, want %d", name, got, wantCosts[name])
		}
	}
	xCodes, _ := m.CodesOf(alliances["X"])
	if got := boolmin.Minimize(4, xCodes, nil).AccessCost(); got != 1 {
		t.Errorf("alliance X cost = %d, paper says 1 (B3')", got)
	}
}

func TestHierarchyPredicatesDeterministic(t *testing.T) {
	h, _, _ := paperFigure5()
	p1 := h.Predicates()
	p2 := h.Predicates()
	if len(p1) != 8 { // 5 companies + 3 alliances
		t.Fatalf("predicate count = %d, want 8", len(p1))
	}
	for i := range p1 {
		if len(p1[i]) != len(p2[i]) {
			t.Fatal("Predicates not deterministic")
		}
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatal("Predicates not deterministic")
			}
		}
	}
}

// Our encoding search must do at least as well as the trivial sequential
// encoding on the paper's hierarchy, and should approach the paper's
// hand-built mapping.
func TestFindHierarchyEncodingQuality(t *testing.T) {
	h, _, _ := paperFigure5()
	preds := h.Predicates()

	paperCost, err := Cost(paperFigure5Mapping(), preds, false)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the paper mapping totals 2+3+3+2+2 (companies) + 1+3+3
	// (alliances X,Y,Z) = 19.
	if paperCost != 19 {
		t.Fatalf("paper mapping workload cost = %d, want 19", paperCost)
	}

	found, err := FindHierarchyEncoding(h, &SearchOptions{SwapBudget: 800})
	if err != nil {
		t.Fatal(err)
	}
	if found.Len() != 12 || found.K() != 4 {
		t.Fatalf("bad mapping shape: len=%d k=%d", found.Len(), found.K())
	}
	foundCost, err := Cost(found, preds, false)
	if err != nil {
		t.Fatal(err)
	}
	trivialCost, err := Cost(MappingOf(h.Leaves), preds, false)
	if err != nil {
		t.Fatal(err)
	}
	if foundCost > trivialCost {
		t.Errorf("search cost %d worse than trivial %d", foundCost, trivialCost)
	}
	// Generous bound: within 30% of the paper's hand-crafted encoding.
	if foundCost > paperCost+6 {
		t.Errorf("search cost %d too far from paper's %d", foundCost, paperCost)
	}
}

func TestFindHierarchyEncodingEmptyMember(t *testing.T) {
	h := &Hierarchy[int]{
		Leaves: []int{1, 2},
		Levels: []HierarchyLevel[int]{{Name: "l", Members: map[string][]int{"empty": {}}}},
	}
	if _, err := FindHierarchyEncoding(h, nil); err == nil {
		t.Error("empty hierarchy element should error")
	}
}
