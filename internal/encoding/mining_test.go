package encoding

import (
	"math/rand"
	"testing"
)

func TestMineWorkloadDedupAndWeights(t *testing.T) {
	history := []WorkloadEntry[string]{
		{Values: []string{"a", "b"}},
		{Values: []string{"b", "a"}},      // same subdomain, different order
		{Values: []string{"a", "b", "a"}}, // same subdomain, duplicate value
		{Values: []string{"c", "d"}},
		{Values: []string{"x"}}, // singleton: dropped
	}
	mined := MineWorkload(history, 1)
	if len(mined) != 2 {
		t.Fatalf("mined %d predicates, want 2: %+v", len(mined), mined)
	}
	if mined[0].Count != 3 || len(mined[0].Values) != 2 {
		t.Fatalf("top predicate = %+v, want {a,b} x3", mined[0])
	}
	if mined[1].Count != 1 {
		t.Fatalf("second predicate = %+v", mined[1])
	}
}

func TestMineWorkloadMinCount(t *testing.T) {
	history := []WorkloadEntry[int]{
		{Values: []int{1, 2}},
		{Values: []int{1, 2}},
		{Values: []int{3, 4}},
	}
	mined := MineWorkload(history, 2)
	if len(mined) != 1 || mined[0].Count != 2 {
		t.Fatalf("mined = %+v", mined)
	}
	// minCount clamp.
	if got := MineWorkload(history, 0); len(got) != 2 {
		t.Fatalf("minCount 0 should behave as 1: %+v", got)
	}
}

func TestPredicatesOf(t *testing.T) {
	mined := []MinedPredicate[int]{
		{Values: []int{1, 2}, Count: 5},
		{Values: []int{3, 4, 5}, Count: 2},
	}
	preds, weights := PredicatesOf(mined)
	if len(preds) != 2 || len(weights) != 2 || weights[0] != 5 || len(preds[1]) != 3 {
		t.Fatalf("PredicatesOf = %v %v", preds, weights)
	}
}

// Mining a skewed history then searching an encoding for it should beat
// the trivial encoding on that history.
func TestMinedWorkloadDrivesEncoding(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := 16
	var values []int
	for i := 0; i < m; i++ {
		values = append(values, i)
	}
	// Two hot subdomains queried repeatedly (scattered values).
	perm := r.Perm(m)
	hot1 := append([]int(nil), perm[:4]...)
	hot2 := append([]int(nil), perm[4:8]...)
	var history []WorkloadEntry[int]
	for i := 0; i < 50; i++ {
		history = append(history, WorkloadEntry[int]{Values: hot1})
	}
	for i := 0; i < 30; i++ {
		history = append(history, WorkloadEntry[int]{Values: hot2})
	}
	history = append(history, WorkloadEntry[int]{Values: []int{perm[9], perm[15]}}) // noise

	mined := MineWorkload(history, 5) // noise filtered
	if len(mined) != 2 {
		t.Fatalf("mined %d predicates, want 2", len(mined))
	}
	preds, _ := PredicatesOf(mined)
	found, err := FindEncoding(values, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	foundCost, err := Cost(found, preds, false)
	if err != nil {
		t.Fatal(err)
	}
	trivialCost, err := Cost(MappingOf(values), preds, false)
	if err != nil {
		t.Fatal(err)
	}
	if foundCost >= trivialCost {
		t.Fatalf("mined encoding cost %d, trivial %d — mining bought nothing", foundCost, trivialCost)
	}
	// Each hot subdomain of size 4 should reach the k-2 optimum.
	for _, p := range preds {
		c, _ := Cost(found, [][]int{p}, false)
		if c != 2 {
			t.Fatalf("hot subdomain cost %d, want 2 (k=4, |s|=4)", c)
		}
	}
}
