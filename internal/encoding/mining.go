package encoding

import (
	"fmt"
	"sort"
)

// This file implements the paper's fourth piece of future work: "if
// selection predicates are not predictable, a proper encoding is ...
// achievable through an analysis of the history of users' queries" —
// i.e., mining a query log for the subdomains worth optimizing the
// encoding for.

// WorkloadEntry is one observed selection: the IN-list subdomain a query
// used.
type WorkloadEntry[V comparable] struct {
	Values []V
}

// MinedPredicate is a subdomain extracted from a query history with its
// observed frequency.
type MinedPredicate[V comparable] struct {
	Values []V
	Count  int
}

// MineWorkload deduplicates a query history into frequency-weighted
// predicates, dropping subdomains seen fewer than minCount times and
// singletons (single-value selections are full min-terms under any
// encoding, so they cannot be improved by re-encoding). The result is
// ordered by descending frequency — the shape PlanReencode-style
// consumers want.
func MineWorkload[V comparable](history []WorkloadEntry[V], minCount int) []MinedPredicate[V] {
	if minCount < 1 {
		minCount = 1
	}
	type bucket struct {
		values []V
		count  int
	}
	buckets := make(map[string]*bucket)
	var keyOrder []string
	for _, e := range history {
		canon := canonicalSubdomain(e.Values)
		if len(canon) < 2 {
			continue
		}
		k := subdomainKey(canon)
		b, ok := buckets[k]
		if !ok {
			b = &bucket{values: canon}
			buckets[k] = b
			keyOrder = append(keyOrder, k)
		}
		b.count++
	}
	var out []MinedPredicate[V]
	for _, k := range keyOrder {
		b := buckets[k]
		if b.count < minCount {
			continue
		}
		out = append(out, MinedPredicate[V]{Values: b.values, Count: b.count})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// canonicalSubdomain deduplicates the value list and orders it
// deterministically by its string key.
func canonicalSubdomain[V comparable](values []V) []V {
	seen := make(map[V]bool, len(values))
	out := make([]V, 0, len(values))
	for _, v := range values {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return valueKey(out[i]) < valueKey(out[j]) })
	return out
}

func subdomainKey[V comparable](canon []V) string {
	k := ""
	for _, v := range canon {
		k += valueKey(v) + "\x00"
	}
	return k
}

// valueKey renders a value deterministically for canonicalization.
func valueKey[V comparable](v V) string {
	switch x := any(v).(type) {
	case string:
		return x
	case int:
		return fmt.Sprintf("%020d", x)
	case int64:
		return fmt.Sprintf("%020d", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// PredicatesOf projects mined predicates into the plain subdomain slices
// FindEncoding and Cost accept, plus parallel weights.
func PredicatesOf[V comparable](mined []MinedPredicate[V]) (preds [][]V, weights []int) {
	for _, m := range mined {
		preds = append(preds, m.Values)
		weights = append(weights, m.Count)
	}
	return preds, weights
}
