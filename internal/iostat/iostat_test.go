package iostat

import (
	"strings"
	"testing"
)

func TestAddAndConversions(t *testing.T) {
	var s Stats
	s.Add(Stats{VectorsRead: 2, WordsRead: 1000, BoolOps: 3})
	s.Add(Stats{VectorsRead: 1, WordsRead: 24, RowsScanned: 7, NodesRead: 2})
	if s.VectorsRead != 3 || s.WordsRead != 1024 || s.BoolOps != 3 || s.RowsScanned != 7 || s.NodesRead != 2 {
		t.Fatalf("Add wrong: %+v", s)
	}
	if s.BytesRead() != 8192 {
		t.Fatalf("BytesRead = %d, want 8192", s.BytesRead())
	}
	if s.PagesRead(4096) != 2 {
		t.Fatalf("PagesRead(4096) = %d, want 2", s.PagesRead(4096))
	}
	if s.PagesRead(0) != 2 { // default page size
		t.Fatalf("PagesRead(0) = %d, want 2", s.PagesRead(0))
	}
	if (Stats{WordsRead: 1}).PagesRead(4096) != 1 {
		t.Fatal("partial page should round up")
	}
	if (Stats{}).PagesRead(4096) != 0 {
		t.Fatal("no reads, no pages")
	}
	if !strings.Contains(s.String(), "vectors=3") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSub(t *testing.T) {
	after := Stats{VectorsRead: 5, WordsRead: 100, BoolOps: 4, RowsScanned: 9, NodesRead: 3}
	before := Stats{VectorsRead: 2, WordsRead: 40, BoolOps: 1, RowsScanned: 9, NodesRead: 1}
	got := after.Sub(before)
	want := Stats{VectorsRead: 3, WordsRead: 60, BoolOps: 3, RowsScanned: 0, NodesRead: 2}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
	// Sub inverts Add: (before + d) - before == d.
	sum := before
	sum.Add(got)
	if sum.Sub(before) != got {
		t.Fatal("Sub does not invert Add")
	}
	if (Stats{}).Sub(Stats{}) != (Stats{}) {
		t.Fatal("zero Sub zero must be zero")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	cases := []Stats{
		{},
		{VectorsRead: 3, WordsRead: 1024, BoolOps: 3, RowsScanned: 7, NodesRead: 2},
		{VectorsRead: 1},
		{RowsScanned: 123456},
	}
	for _, s := range cases {
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round-trip %q -> %+v, want %+v", s.String(), got, s)
		}
	}
	if _, err := Parse("not a stats line"); err == nil {
		t.Fatal("Parse accepted garbage")
	}
}
