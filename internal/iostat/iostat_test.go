package iostat

import (
	"strings"
	"testing"
)

func TestAddAndConversions(t *testing.T) {
	var s Stats
	s.Add(Stats{VectorsRead: 2, WordsRead: 1000, BoolOps: 3})
	s.Add(Stats{VectorsRead: 1, WordsRead: 24, RowsScanned: 7, NodesRead: 2})
	if s.VectorsRead != 3 || s.WordsRead != 1024 || s.BoolOps != 3 || s.RowsScanned != 7 || s.NodesRead != 2 {
		t.Fatalf("Add wrong: %+v", s)
	}
	if s.BytesRead() != 8192 {
		t.Fatalf("BytesRead = %d, want 8192", s.BytesRead())
	}
	if s.PagesRead(4096) != 2 {
		t.Fatalf("PagesRead(4096) = %d, want 2", s.PagesRead(4096))
	}
	if s.PagesRead(0) != 2 { // default page size
		t.Fatalf("PagesRead(0) = %d, want 2", s.PagesRead(0))
	}
	if (Stats{WordsRead: 1}).PagesRead(4096) != 1 {
		t.Fatal("partial page should round up")
	}
	if (Stats{}).PagesRead(4096) != 0 {
		t.Fatal("no reads, no pages")
	}
	if !strings.Contains(s.String(), "vectors=3") {
		t.Fatalf("String = %q", s.String())
	}
}
