// Package iostat provides the access-cost accounting used throughout the
// benchmarks. The paper's Section 3 cost metric is the number of bitmap
// vectors that must be read to evaluate a selection (c_s for simple
// bitmap indexes, c_e for encoded ones); disk-oriented readings also care
// about bytes and pages. Stats is deliberately a plain value type so index
// operations can return it and harnesses can sum it.
package iostat

import "fmt"

// DefaultPageSize matches the paper's cost analysis (p = 4K).
const DefaultPageSize = 4096

// Stats accumulates the cost of evaluating one or more selections.
type Stats struct {
	VectorsRead int // bitmap vectors touched (the paper's c_s / c_e)
	WordsRead   int // 64-bit words scanned
	BoolOps     int // bulk Boolean vector operations
	RowsScanned int // rows materialized or scanned (projection/B-tree paths)
	NodesRead   int // tree nodes visited (B-tree paths)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.VectorsRead += other.VectorsRead
	s.WordsRead += other.WordsRead
	s.BoolOps += other.BoolOps
	s.RowsScanned += other.RowsScanned
	s.NodesRead += other.NodesRead
}

// Sub returns the field-wise difference s - other. It is the natural way
// to turn two cumulative snapshots into the cost of the interval between
// them.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		VectorsRead: s.VectorsRead - other.VectorsRead,
		WordsRead:   s.WordsRead - other.WordsRead,
		BoolOps:     s.BoolOps - other.BoolOps,
		RowsScanned: s.RowsScanned - other.RowsScanned,
		NodesRead:   s.NodesRead - other.NodesRead,
	}
}

// IsZero reports whether no cost has been recorded — useful for plan
// renderers that omit empty per-node accounting.
func (s Stats) IsZero() bool { return s == Stats{} }

// BytesRead converts the word count into bytes.
func (s Stats) BytesRead() int { return s.WordsRead * 8 }

// PagesRead converts the byte volume into pageSize-sized page reads
// (rounded up per the usual disk model). A pageSize of 0 uses
// DefaultPageSize.
func (s Stats) PagesRead(pageSize int) int {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	b := s.BytesRead()
	return (b + pageSize - 1) / pageSize
}

func (s Stats) String() string {
	return fmt.Sprintf("vectors=%d words=%d ops=%d rows=%d nodes=%d",
		s.VectorsRead, s.WordsRead, s.BoolOps, s.RowsScanned, s.NodesRead)
}

// Parse decodes the String format back into a Stats, so logged cost
// lines round-trip.
func Parse(s string) (Stats, error) {
	var st Stats
	n, err := fmt.Sscanf(s, "vectors=%d words=%d ops=%d rows=%d nodes=%d",
		&st.VectorsRead, &st.WordsRead, &st.BoolOps, &st.RowsScanned, &st.NodesRead)
	if err != nil {
		return Stats{}, fmt.Errorf("iostat: cannot parse %q: %w", s, err)
	}
	if n != 5 {
		return Stats{}, fmt.Errorf("iostat: parsed %d of 5 fields from %q", n, s)
	}
	return st, nil
}
