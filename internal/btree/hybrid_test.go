package btree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHybridLowCardinalityUsesBitmaps(t *testing.T) {
	// m=8 over 4096 rows: every key covers 512 rows >> 4096/32 = 128, so
	// every leaf is a bitmap.
	col := make([]uint64, 4096)
	for i := range col {
		col[i] = uint64(i % 8)
	}
	h := BuildHybrid(col, 16)
	if h.Keys() != 8 || h.BitmapKeys() != 8 {
		t.Fatalf("keys=%d bitmapKeys=%d, want all bitmap", h.Keys(), h.BitmapKeys())
	}
	if h.DegradedToValueList() {
		t.Fatal("low cardinality should not degrade")
	}
	// Leaf payload = 8 bitmaps.
	if h.LeafPayloadBytes() != 8*(4096/8) {
		t.Fatalf("LeafPayloadBytes = %d", h.LeafPayloadBytes())
	}
	rows, st := h.Eq(3, len(col))
	if rows.Count() != 512 {
		t.Fatalf("Eq count = %d", rows.Count())
	}
	if st.VectorsRead != 1 || st.RowsScanned != 0 {
		t.Fatalf("bitmap-leaf Eq stats: %+v", st)
	}
}

// The paper's degradation: at high cardinality every bitmap is too
// sparse, so the hybrid reduces to a plain value-list B-tree.
func TestHybridHighCardinalityDegrades(t *testing.T) {
	col := make([]uint64, 4096)
	for i := range col {
		col[i] = uint64(i) // every key unique: 1 row each < 128
	}
	h := BuildHybrid(col, 16)
	if !h.DegradedToValueList() {
		t.Fatalf("expected degradation, %d bitmap keys remain", h.BitmapKeys())
	}
	// Payload is now pure tuple-id lists: 4 bytes per row.
	if h.LeafPayloadBytes() != 4*4096 {
		t.Fatalf("LeafPayloadBytes = %d", h.LeafPayloadBytes())
	}
	rows, st := h.Eq(7, len(col))
	if rows.Count() != 1 || st.VectorsRead != 0 || st.RowsScanned != 1 {
		t.Fatalf("list-leaf Eq: count=%d stats=%+v", rows.Count(), st)
	}
}

func TestHybridRangeChargesPerKey(t *testing.T) {
	// Mixed density: key 0 dense (bitmap), keys 100.. sparse (lists).
	var col []uint64
	for i := 0; i < 1000; i++ {
		col = append(col, 0)
	}
	for i := 0; i < 50; i++ {
		col = append(col, uint64(100+i))
	}
	h := BuildHybrid(col, 16)
	if h.BitmapKeys() != 1 {
		t.Fatalf("bitmap keys = %d, want just the dense one", h.BitmapKeys())
	}
	rows, st := h.Range(0, 200, len(col))
	if rows.Count() != len(col) {
		t.Fatalf("Range count = %d", rows.Count())
	}
	if st.VectorsRead != 1 {
		t.Fatalf("expected exactly 1 bitmap leaf read: %+v", st)
	}
	if st.RowsScanned != 50 {
		t.Fatalf("expected 50 list rows: %+v", st)
	}
	if h.SizeBytes(4096) <= h.LeafPayloadBytes() {
		t.Fatal("SizeBytes must include structure pages")
	}
	if h.Len() != len(col) {
		t.Fatal("Len wrong")
	}
}

// Property: hybrid answers equal the plain tree's on random data.
func TestPropHybridMatchesPlainTree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		m := 1 + r.Intn(80)
		col := make([]uint64, n)
		for i := range col {
			col[i] = uint64(r.Intn(m))
		}
		h := BuildHybrid(col, 8)
		plain := Build(col, 8)
		v := uint64(r.Intn(m))
		a, _ := h.Eq(v, n)
		b, _ := plain.Eq(v, n)
		if !a.Equal(b) {
			return false
		}
		lo, hi := uint64(r.Intn(m)), uint64(r.Intn(m))
		ra, _ := h.Range(lo, hi, n)
		rb, _ := plain.Range(lo, hi, n)
		return ra.Equal(rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
