package btree

import (
	"repro/internal/bitvec"
	"repro/internal/iostat"
)

// Hybrid is the value-list/bitmap hybrid B-tree of Sections 3.2 and 4: a
// B-tree over the key values whose leaves store, per key, either a bitmap
// vector of qualifying rows or a tuple-id list — whichever is smaller
// under the sparsity rule. The paper's criticism, which this type makes
// measurable: as cardinality grows every key's bitmap becomes sparse, all
// leaves flip to tuple-id lists, and "the so-called hybrid index reduces
// to a B-tree", losing bitmap cooperativity exactly where encoded bitmap
// indexing still works.
type Hybrid struct {
	tree  *Tree
	nRows int
	// bitmapKeys[key] is true when the key's row set is stored as a
	// bitmap (rows*? bits cheaper than 4-byte ids).
	bitmapKeys map[uint64]bool
}

// BuildHybrid constructs the hybrid index. A key's rows are stored as a
// bitmap when the bitmap (nRows/8 bytes) is at most as large as the
// tuple-id list (4 bytes per row), i.e. when the key covers at least
// nRows/32 rows.
func BuildHybrid(column []uint64, degree int) *Hybrid {
	h := &Hybrid{
		tree:       Build(column, degree),
		nRows:      len(column),
		bitmapKeys: make(map[uint64]bool),
	}
	bitmapBytes := (h.nRows + 7) / 8
	h.tree.AscendKeys(func(key uint64, rows []int32) bool {
		h.bitmapKeys[key] = 4*len(rows) >= bitmapBytes
		return true
	})
	return h
}

// Len returns the number of rows.
func (h *Hybrid) Len() int { return h.nRows }

// Keys returns the number of distinct keys.
func (h *Hybrid) Keys() int { return h.tree.Keys() }

// BitmapKeys returns how many keys are stored as bitmaps.
func (h *Hybrid) BitmapKeys() int {
	c := 0
	for _, b := range h.bitmapKeys {
		if b {
			c++
		}
	}
	return c
}

// DegradedToValueList reports the paper's failure mode: no key qualifies
// for bitmap storage, so the hybrid is just a B-tree with posting lists.
func (h *Hybrid) DegradedToValueList() bool { return h.BitmapKeys() == 0 }

// LeafPayloadBytes returns the leaf-storage size under the hybrid rule:
// per key, the smaller of the bitmap and the tuple-id list.
func (h *Hybrid) LeafPayloadBytes() int {
	bitmapBytes := (h.nRows + 7) / 8
	total := 0
	h.tree.AscendKeys(func(key uint64, rows []int32) bool {
		if h.bitmapKeys[key] {
			total += bitmapBytes
		} else {
			total += 4 * len(rows)
		}
		return true
	})
	return total
}

// SizeBytes returns structure pages plus leaf payload.
func (h *Hybrid) SizeBytes(pageSize int) int {
	return h.tree.SizeBytes(pageSize) + h.LeafPayloadBytes()
}

// Eq returns the rows for a key; the stats charge a tree descent plus
// either one bitmap read or a list materialization, matching the storage
// decision.
func (h *Hybrid) Eq(key uint64, nRows int) (*bitvec.Vector, iostat.Stats) {
	rows, st := h.tree.Eq(key, nRows)
	if h.bitmapKeys[key] {
		// Bitmap leaf: a vector read instead of a row materialization.
		st.VectorsRead++
		st.WordsRead += (h.nRows + 63) / 64
		st.RowsScanned = 0
	}
	return rows, st
}

// Range returns rows in [lo, hi], charging per-key storage accesses.
func (h *Hybrid) Range(lo, hi uint64, nRows int) (*bitvec.Vector, iostat.Stats) {
	rows, st := h.tree.Range(lo, hi, nRows)
	// Re-charge the leaf payload per storage kind.
	st.RowsScanned = 0
	h.tree.AscendKeys(func(key uint64, posting []int32) bool {
		if key < lo {
			return true
		}
		if key > hi {
			return false
		}
		if h.bitmapKeys[key] {
			st.VectorsRead++
			st.WordsRead += (h.nRows + 63) / 64
		} else {
			st.RowsScanned += len(posting)
		}
		return true
	})
	return rows, st
}
