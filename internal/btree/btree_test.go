package btree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degree < 3 should panic")
		}
	}()
	New(2)
}

func TestEqAndDuplicates(t *testing.T) {
	col := []uint64{5, 0, 7, 5, 3, 5}
	tr := Build(col, 4)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rows, st := tr.Eq(5, len(col))
	if rows.String() != "100101" {
		t.Fatalf("Eq(5) = %s", rows.String())
	}
	if st.NodesRead < 1 {
		t.Fatal("Eq must visit at least the leaf")
	}
	rows, _ = tr.Eq(42, len(col))
	if rows.Any() {
		t.Fatal("Eq(42) should be empty")
	}
	if tr.Keys() != 4 || tr.Len() != 6 {
		t.Fatalf("Keys=%d Len=%d", tr.Keys(), tr.Len())
	}
}

func TestRange(t *testing.T) {
	col := []uint64{5, 0, 7, 5, 3, 1, 6}
	tr := Build(col, 3)
	rows, _ := tr.Range(3, 6, len(col))
	if rows.String() != "1001101" {
		t.Fatalf("Range(3,6) = %s", rows.String())
	}
	rows, _ = tr.Range(6, 3, len(col))
	if rows.Any() {
		t.Fatal("inverted range should be empty")
	}
	rows, _ = tr.Range(0, 100, len(col))
	if rows.Count() != len(col) {
		t.Fatal("full range should match everything")
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	tr := New(3)
	for i := 0; i < 100; i++ {
		tr.Insert(uint64(i), i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 4 {
		t.Fatalf("height = %d, expected a multi-level tree at degree 3", tr.Height())
	}
	if tr.Nodes() <= tr.Height() {
		t.Fatalf("nodes = %d looks too small", tr.Nodes())
	}
	// All keys still findable.
	for i := 0; i < 100; i++ {
		rows, _ := tr.Eq(uint64(i), 100)
		if rows.Count() != 1 || !rows.Get(i) {
			t.Fatalf("key %d lost after splits", i)
		}
	}
}

func TestAscendKeys(t *testing.T) {
	tr := Build([]uint64{9, 2, 5, 2}, 3)
	var keys []uint64
	tr.AscendKeys(func(k uint64, rows []int32) bool {
		keys = append(keys, k)
		return true
	})
	want := []uint64{2, 5, 9}
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	// Early stop.
	n := 0
	tr.AscendKeys(func(uint64, []int32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("AscendKeys did not stop early: %d", n)
	}
}

func TestSizeAccounting(t *testing.T) {
	tr := Build([]uint64{1, 2, 3}, 4)
	if tr.SizeBytes(4096) != tr.Nodes()*4096 {
		t.Fatal("SizeBytes should be nodes * page")
	}
	if tr.SizeBytes(0) != tr.Nodes()*4096 {
		t.Fatal("default page size should be 4096")
	}
	if tr.PayloadBytes() != 3*8+3*4 {
		t.Fatalf("PayloadBytes = %d", tr.PayloadBytes())
	}
	if tr.Degree() != 4 {
		t.Fatal("Degree accessor wrong")
	}
}

// Property: after random inserts, invariants hold and every Eq/Range
// matches a scan.
func TestPropMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		degree := 3 + r.Intn(6)
		n := 1 + r.Intn(500)
		col := make([]uint64, n)
		for i := range col {
			col[i] = uint64(r.Intn(60))
		}
		tr := Build(col, degree)
		if tr.CheckInvariants() != nil {
			return false
		}
		v := uint64(r.Intn(60))
		eq, _ := tr.Eq(v, n)
		for i, x := range col {
			if eq.Get(i) != (x == v) {
				return false
			}
		}
		lo := uint64(r.Intn(60))
		hi := uint64(r.Intn(60))
		rng, _ := tr.Range(lo, hi, n)
		for i, x := range col {
			if rng.Get(i) != (x >= lo && x <= hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: height stays logarithmic: at degree M with K distinct keys,
// height <= 2 + log_{ceil(M/2)}(K) roughly; check a loose bound.
func TestPropHeightLogarithmic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(2000)
		tr := New(8)
		for i := 0; i < n; i++ {
			tr.Insert(uint64(r.Intn(n)), i)
		}
		bound := 1
		cap := 1
		for cap < tr.Keys() {
			cap *= 4 // min fanout after split is about degree/2
			bound++
		}
		return tr.Height() <= bound+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(r.Intn(1<<20)), i)
	}
}
