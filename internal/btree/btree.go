// Package btree implements the value-list B-tree baseline of Sections 2.1
// and 4: a B+-tree whose leaves hold, for each key, the list of tuple-ids
// carrying that key (an inverted list). It is the index the paper's cost
// analysis compares bitmap indexes against, so the implementation tracks
// node counts, height, and visited-node statistics to feed the same space
// and access formulas (B-tree space ≈ 1.44·n/M·p bytes for degree M and
// page size p).
package btree

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/iostat"
)

// Tree is a B+-tree mapping uint64 keys to posting lists of row ids.
// Degree is the maximum number of children of an internal node; leaves
// hold up to Degree-1 distinct keys.
type Tree struct {
	degree    int
	root      node
	firstLeaf *leaf
	numKeys   int // distinct keys
	numRows   int // total postings
	height    int
	internal  int // internal node count
	leaves    int // leaf node count
}

type node interface {
	isLeaf() bool
}

type inner struct {
	keys     []uint64 // len = len(children)-1; child i holds keys < keys[i]
	children []node
}

type leaf struct {
	keys     []uint64
	postings [][]int32
	next     *leaf
}

func (*inner) isLeaf() bool { return false }
func (*leaf) isLeaf() bool  { return true }

// New returns an empty tree of the given degree (fanout). Degree must be
// at least 3.
func New(degree int) *Tree {
	if degree < 3 {
		panic(fmt.Sprintf("btree: degree %d < 3", degree))
	}
	lf := &leaf{}
	return &Tree{degree: degree, root: lf, firstLeaf: lf, height: 1, leaves: 1}
}

// Build constructs a tree of the given degree over the column, inserting
// row ids 0..len(column)-1.
func Build(column []uint64, degree int) *Tree {
	t := New(degree)
	for i, v := range column {
		t.Insert(v, i)
	}
	return t
}

// Degree returns the tree's fanout.
func (t *Tree) Degree() int { return t.degree }

// Len returns the number of postings (rows) stored.
func (t *Tree) Len() int { return t.numRows }

// Keys returns the number of distinct keys.
func (t *Tree) Keys() int { return t.numKeys }

// Height returns the number of levels (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// Nodes returns the total node count (internal + leaves).
func (t *Tree) Nodes() int { return t.internal + t.leaves }

// SizeBytes returns the paged size of the tree: one page per node, the
// model behind the paper's 1.44·n/M·p space formula.
func (t *Tree) SizeBytes(pageSize int) int {
	if pageSize <= 0 {
		pageSize = iostat.DefaultPageSize
	}
	return t.Nodes() * pageSize
}

// PayloadBytes returns the actual in-memory payload: keys and postings.
func (t *Tree) PayloadBytes() int {
	return t.numKeys*8 + t.numRows*4
}

// Insert adds row to the posting list of key.
func (t *Tree) Insert(key uint64, row int) {
	t.numRows++
	newChild, splitKey := t.insert(t.root, key, row)
	if newChild != nil {
		t.root = &inner{keys: []uint64{splitKey}, children: []node{t.root, newChild}}
		t.internal++
		t.height++
	}
}

// insert descends to the right leaf; on split it returns the new right
// sibling and its separator key.
func (t *Tree) insert(n node, key uint64, row int) (node, uint64) {
	switch n := n.(type) {
	case *leaf:
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.postings[i] = append(n.postings[i], int32(row))
			return nil, 0
		}
		t.numKeys++
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.postings = append(n.postings, nil)
		copy(n.postings[i+1:], n.postings[i:])
		n.postings[i] = []int32{int32(row)}
		if len(n.keys) < t.degree {
			return nil, 0
		}
		// Split the leaf.
		mid := len(n.keys) / 2
		right := &leaf{
			keys:     append([]uint64(nil), n.keys[mid:]...),
			postings: append([][]int32(nil), n.postings[mid:]...),
			next:     n.next,
		}
		n.keys = n.keys[:mid]
		n.postings = n.postings[:mid]
		n.next = right
		t.leaves++
		return right, right.keys[0]

	case *inner:
		i := upperBound(n.keys, key)
		newChild, splitKey := t.insert(n.children[i], key, row)
		if newChild == nil {
			return nil, 0
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = splitKey
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = newChild
		if len(n.children) <= t.degree {
			return nil, 0
		}
		// Split the internal node.
		midKey := len(n.keys) / 2
		up := n.keys[midKey]
		right := &inner{
			keys:     append([]uint64(nil), n.keys[midKey+1:]...),
			children: append([]node(nil), n.children[midKey+1:]...),
		}
		n.keys = n.keys[:midKey]
		n.children = n.children[:midKey+1]
		t.internal++
		return right, up
	}
	panic("btree: unknown node type")
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index with keys[i] > key; for routing in
// internal nodes (child i covers keys < keys[i], duplicates to the right).
func upperBound(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends to the leaf that would hold key, counting visited
// nodes.
func (t *Tree) findLeaf(key uint64, st *iostat.Stats) *leaf {
	n := t.root
	for {
		st.NodesRead++
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			n = v.children[upperBound(v.keys, key)]
		}
	}
}

// Eq returns the row set for key as a bit vector over nRows positions.
func (t *Tree) Eq(key uint64, nRows int) (*bitvec.Vector, iostat.Stats) {
	var st iostat.Stats
	out := bitvec.New(nRows)
	lf := t.findLeaf(key, &st)
	i := lowerBound(lf.keys, key)
	if i < len(lf.keys) && lf.keys[i] == key {
		for _, r := range lf.postings[i] {
			out.Set(int(r))
		}
		st.RowsScanned += len(lf.postings[i])
	}
	return out, st
}

// Range returns rows with lo <= key <= hi by walking the leaf chain.
func (t *Tree) Range(lo, hi uint64, nRows int) (*bitvec.Vector, iostat.Stats) {
	var st iostat.Stats
	out := bitvec.New(nRows)
	if lo > hi {
		return out, st
	}
	lf := t.findLeaf(lo, &st)
	for lf != nil {
		for i, k := range lf.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return out, st
			}
			for _, r := range lf.postings[i] {
				out.Set(int(r))
			}
			st.RowsScanned += len(lf.postings[i])
		}
		lf = lf.next
		if lf != nil {
			st.NodesRead++
		}
	}
	return out, st
}

// AscendKeys calls fn for every distinct key in ascending order until fn
// returns false.
func (t *Tree) AscendKeys(fn func(key uint64, rows []int32) bool) {
	for lf := t.firstLeaf; lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			if !fn(k, lf.postings[i]) {
				return
			}
		}
	}
}

// CheckInvariants verifies key ordering across the leaf chain and that
// posting counts add up; used by tests.
func (t *Tree) CheckInvariants() error {
	prevSet := false
	var prev uint64
	keys, rows := 0, 0
	for lf := t.firstLeaf; lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			if prevSet && k <= prev {
				return fmt.Errorf("btree: keys out of order: %d after %d", k, prev)
			}
			prev, prevSet = k, true
			keys++
			rows += len(lf.postings[i])
			if len(lf.postings[i]) == 0 {
				return fmt.Errorf("btree: empty posting list for key %d", k)
			}
		}
	}
	if keys != t.numKeys {
		return fmt.Errorf("btree: key count %d != tracked %d", keys, t.numKeys)
	}
	if rows != t.numRows {
		return fmt.Errorf("btree: row count %d != tracked %d", rows, t.numRows)
	}
	return nil
}
