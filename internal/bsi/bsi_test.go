package bsi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildShape(t *testing.T) {
	ix := Build([]uint64{0, 1, 2, 3, 4, 5, 6, 7})
	if ix.K() != 3 || ix.Len() != 8 {
		t.Fatalf("K=%d Len=%d, want 3, 8", ix.K(), ix.Len())
	}
	if Build([]uint64{0, 0}).K() != 1 {
		t.Fatal("all-zero column should still get one slice")
	}
	if ix.SizeBytes() != 3*8 {
		t.Fatalf("SizeBytes = %d", ix.SizeBytes())
	}
}

func TestNewValidation(t *testing.T) {
	for _, k := range []int{0, -1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) should panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestAppendOverflowPanics(t *testing.T) {
	ix := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	ix.Append(4)
}

func TestEq(t *testing.T) {
	col := []uint64{5, 0, 7, 5, 3}
	ix := Build(col)
	rows, st := ix.Eq(5)
	if rows.String() != "10010" {
		t.Fatalf("Eq(5) = %s", rows.String())
	}
	if st.VectorsRead != ix.K() {
		t.Fatalf("Eq reads %d vectors, want k=%d", st.VectorsRead, ix.K())
	}
	rows, _ = ix.Eq(0)
	if rows.String() != "01000" {
		t.Fatalf("Eq(0) = %s", rows.String())
	}
}

func TestRangeBasics(t *testing.T) {
	col := []uint64{5, 0, 7, 5, 3, 1, 6}
	ix := Build(col)
	cases := []struct {
		lo, hi uint64
		want   string
	}{
		{0, 7, "1111111"},
		{3, 5, "1001100"},
		{5, 5, "1001000"},
		{6, 7, "0010001"},
		{0, 0, "0100000"},
		{8, 20, "0000000"},
		{5, 3, "0000000"}, // inverted bounds
	}
	for _, c := range cases {
		rows, _ := ix.Range(c.lo, c.hi)
		if rows.String() != c.want {
			t.Errorf("Range(%d,%d) = %s, want %s", c.lo, c.hi, rows.String(), c.want)
		}
	}
}

func TestRangeCostIsSlicesBound(t *testing.T) {
	// The O'Neil–Quass algorithm reads each slice at most twice (once per
	// bound) regardless of the interval width δ — contrast with the simple
	// bitmap index's c_s = δ.
	col := make([]uint64, 4096)
	for i := range col {
		col[i] = uint64(i % 1000)
	}
	ix := Build(col)
	_, st := ix.Range(10, 900) // δ = 891
	if st.VectorsRead > 2*ix.K() {
		t.Fatalf("Range read %d vectors, want <= %d", st.VectorsRead, 2*ix.K())
	}
}

func TestSum(t *testing.T) {
	col := []uint64{5, 0, 7, 5, 3}
	ix := Build(col)
	all, _ := ix.Range(0, 7)
	sum, st := ix.Sum(all)
	if sum != 20 {
		t.Fatalf("Sum = %d, want 20", sum)
	}
	if st.VectorsRead != ix.K() {
		t.Fatalf("Sum reads %d vectors, want k", st.VectorsRead)
	}
	some, _ := ix.Eq(5)
	if sum, _ := ix.Sum(some); sum != 10 {
		t.Fatalf("Sum over Eq(5) = %d, want 10", sum)
	}
}

func TestValueAt(t *testing.T) {
	col := []uint64{5, 0, 7}
	ix := Build(col)
	for i, want := range col {
		if got := ix.ValueAt(i); got != want {
			t.Fatalf("ValueAt(%d) = %d, want %d", i, got, want)
		}
	}
}

// Property: Range agrees with a direct scan for random data and bounds.
func TestPropRangeMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		maxV := uint64(1 + r.Intn(1000))
		col := make([]uint64, n)
		for i := range col {
			col[i] = uint64(r.Intn(int(maxV)))
		}
		ix := Build(col)
		lo := uint64(r.Intn(int(maxV)))
		hi := uint64(r.Intn(int(maxV)))
		rows, _ := ix.Range(lo, hi)
		for i, v := range col {
			want := v >= lo && v <= hi
			if rows.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum over an arbitrary row set equals the scalar sum.
func TestPropSumMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		col := make([]uint64, n)
		for i := range col {
			col[i] = uint64(r.Intn(500))
		}
		ix := Build(col)
		rows, _ := ix.Range(uint64(r.Intn(250)), uint64(250+r.Intn(250)))
		sum, _ := ix.Sum(rows)
		var want uint64
		for i, v := range col {
			if rows.Get(i) {
				want += v
			}
		}
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq(v) equals Range(v, v).
func TestPropEqIsPointRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		col := make([]uint64, n)
		for i := range col {
			col[i] = uint64(r.Intn(64))
		}
		ix := Build(col)
		v := uint64(r.Intn(64))
		a, _ := ix.Eq(v)
		b, _ := ix.Range(v, v)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
