// Package bsi implements the bit-sliced index of O'Neil & Quass (SIGMOD
// 1997), which Section 4 of the paper identifies as the special case of an
// encoded bitmap index whose encoding is the total-order preserving
// internal representation of fixed-point numbers. It serves as a baseline
// for numeric range selections and supports bitmap-side aggregation.
package bsi

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/iostat"
)

// Index is a bit-sliced index over non-negative integer keys. Slice i
// holds bit i (LSB first) of each row's key.
type Index struct {
	slices []*bitvec.Vector
	n      int
}

// New returns an empty index with capacity for k-bit keys.
func New(k int) *Index {
	if k <= 0 || k > 63 {
		panic(fmt.Sprintf("bsi: k=%d out of range [1,63]", k))
	}
	s := make([]*bitvec.Vector, k)
	for i := range s {
		s[i] = bitvec.New(0)
	}
	return &Index{slices: s}
}

// Build constructs a bit-sliced index over the column, sizing k to the
// maximum value present (at least 1 slice).
func Build(column []uint64) *Index {
	var max uint64
	for _, v := range column {
		if v > max {
			max = v
		}
	}
	k := bits.Len64(max)
	if k == 0 {
		k = 1
	}
	ix := New(k)
	for _, v := range column {
		ix.Append(v)
	}
	return ix
}

// K returns the number of slices.
func (ix *Index) K() int { return len(ix.slices) }

// Len returns the number of rows.
func (ix *Index) Len() int { return ix.n }

// SizeBytes returns the bit-payload size of all slices.
func (ix *Index) SizeBytes() int {
	total := 0
	for _, s := range ix.slices {
		total += s.SizeBytes()
	}
	return total
}

// Append adds a row with the given key.
func (ix *Index) Append(v uint64) {
	if bits.Len64(v) > len(ix.slices) {
		panic(fmt.Sprintf("bsi: value %d does not fit in %d slices", v, len(ix.slices)))
	}
	ix.n++
	for i, s := range ix.slices {
		s.Append(v&(1<<uint(i)) != 0)
	}
}

// Eq returns rows whose key equals v: one pass ANDing every slice (or its
// complement), k vectors read.
func (ix *Index) Eq(v uint64) (*bitvec.Vector, iostat.Stats) {
	var st iostat.Stats
	out := bitvec.New(ix.n)
	if bits.Len64(v) > len(ix.slices) {
		return out, st // v is wider than any stored key
	}
	out.Fill()
	for i, s := range ix.slices {
		st.VectorsRead++
		st.WordsRead += s.Words()
		st.BoolOps++
		if v&(1<<uint(i)) != 0 {
			out.And(s)
		} else {
			out.AndNot(s)
		}
	}
	return out, st
}

// cmp computes, in one MSB-to-LSB pass over the slices, the row sets with
// key < c (lt) and key == c (eq) — the O'Neil–Quass range evaluation
// algorithm.
func (ix *Index) cmp(c uint64) (lt, eq *bitvec.Vector, st iostat.Stats) {
	eq = bitvec.New(ix.n)
	eq.Fill()
	lt = bitvec.New(ix.n)
	if bits.Len64(c) > len(ix.slices) {
		// Every key is below c.
		lt.Fill()
		eq.Reset()
		return lt, eq, st
	}
	for i := len(ix.slices) - 1; i >= 0; i-- {
		s := ix.slices[i]
		st.VectorsRead++
		st.WordsRead += s.Words()
		if c&(1<<uint(i)) != 0 {
			// Rows with bit 0 here while still equal so far are smaller.
			lt.Or(bitvec.AndNot(eq, s))
			eq.And(s)
			st.BoolOps += 3
		} else {
			eq.AndNot(s)
			st.BoolOps++
		}
	}
	return lt, eq, st
}

// Range returns rows with lo <= key <= hi (inclusive), using two
// slice passes at most.
func (ix *Index) Range(lo, hi uint64) (*bitvec.Vector, iostat.Stats) {
	var st iostat.Stats
	if lo > hi {
		return bitvec.New(ix.n), st
	}
	ltHi, eqHi, s1 := ix.cmp(hi)
	st.Add(s1)
	le := ltHi.Or(eqHi) // key <= hi
	st.BoolOps++
	if lo == 0 {
		return le, st
	}
	ltLo, _, s2 := ix.cmp(lo)
	st.Add(s2)
	st.BoolOps++
	return le.AndNot(ltLo), st
}

// Sum computes the sum of keys over the given row set directly on the
// slices: sum = Σ 2^i · popcount(B_i AND rows). This is the bitmap-side
// aggregation O'Neil & Quass proposed and the paper lists as future work
// for encoded bitmap indexes.
func (ix *Index) Sum(rows *bitvec.Vector) (uint64, iostat.Stats) {
	var st iostat.Stats
	var sum uint64
	for i, s := range ix.slices {
		st.VectorsRead++
		st.WordsRead += s.Words()
		st.BoolOps++
		sum += uint64(bitvec.And(s, rows).Count()) << uint(i)
	}
	return sum, st
}

// ValueAt reconstructs the key of a single row by probing each slice.
func (ix *Index) ValueAt(row int) uint64 {
	var v uint64
	for i, s := range ix.slices {
		if s.Get(row) {
			v |= 1 << uint(i)
		}
	}
	return v
}
