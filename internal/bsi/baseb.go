package bsi

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/iostat"
)

// BaseBIndex is the non-binary-base bit-sliced index of O'Neil & Quass
// that Section 4 of the paper mentions: keys are written in base b, and
// each digit position keeps b one-hot bitmap vectors (one per digit
// value). Base 2 with {B_i} only is the ordinary bit-sliced index; larger
// bases trade space (d·b vectors for d digits) for cheaper equality
// (d vector reads instead of k) — the knob between the simple bitmap
// index (b = domain size, one digit) and the binary sliced index (b = 2).
type BaseBIndex struct {
	base   int
	digits int
	// slices[d][v] marks rows whose d-th base-b digit equals v.
	slices [][]*bitvec.Vector
	n      int
}

// NewBaseB returns an empty index for keys with the given number of
// base-b digits. base must be at least 2.
func NewBaseB(base, digits int) *BaseBIndex {
	if base < 2 {
		panic(fmt.Sprintf("bsi: base %d < 2", base))
	}
	if digits < 1 || pow(base, digits) <= 0 {
		panic(fmt.Sprintf("bsi: invalid digit count %d for base %d", digits, base))
	}
	s := make([][]*bitvec.Vector, digits)
	for d := range s {
		s[d] = make([]*bitvec.Vector, base)
		for v := range s[d] {
			s[d][v] = bitvec.New(0)
		}
	}
	return &BaseBIndex{base: base, digits: digits, slices: s}
}

// BuildBaseB sizes the index to the column's maximum value and indexes it.
func BuildBaseB(column []uint64, base int) *BaseBIndex {
	var max uint64
	for _, v := range column {
		if v > max {
			max = v
		}
	}
	digits := 1
	capacity := uint64(base)
	for capacity <= max {
		capacity *= uint64(base)
		digits++
	}
	ix := NewBaseB(base, digits)
	for _, v := range column {
		ix.Append(v)
	}
	return ix
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out < 0 {
			return -1
		}
	}
	return out
}

// Base returns b.
func (ix *BaseBIndex) Base() int { return ix.base }

// Digits returns the number of digit positions.
func (ix *BaseBIndex) Digits() int { return ix.digits }

// NumVectors returns the total vector count: digits x base.
func (ix *BaseBIndex) NumVectors() int { return ix.digits * ix.base }

// Len returns the number of rows.
func (ix *BaseBIndex) Len() int { return ix.n }

// SizeBytes returns the total bit payload.
func (ix *BaseBIndex) SizeBytes() int {
	total := 0
	for _, digit := range ix.slices {
		for _, vec := range digit {
			total += vec.SizeBytes()
		}
	}
	return total
}

// Capacity returns the largest representable key plus one.
func (ix *BaseBIndex) Capacity() uint64 {
	c := uint64(1)
	for i := 0; i < ix.digits; i++ {
		c *= uint64(ix.base)
	}
	return c
}

// Append adds a row with the given key.
func (ix *BaseBIndex) Append(v uint64) {
	if v >= ix.Capacity() {
		panic(fmt.Sprintf("bsi: value %d exceeds capacity %d", v, ix.Capacity()))
	}
	ix.n++
	rest := v
	for d := 0; d < ix.digits; d++ {
		dv := int(rest % uint64(ix.base))
		rest /= uint64(ix.base)
		for val, vec := range ix.slices[d] {
			vec.Append(val == dv)
		}
	}
}

// Eq returns rows whose key equals v: one vector AND per digit position
// (d reads, vs ceil(log2 m) for the binary form).
func (ix *BaseBIndex) Eq(v uint64) (*bitvec.Vector, iostat.Stats) {
	var st iostat.Stats
	out := bitvec.New(ix.n)
	if v >= ix.Capacity() {
		return out, st
	}
	out.Fill()
	rest := v
	for d := 0; d < ix.digits; d++ {
		dv := int(rest % uint64(ix.base))
		rest /= uint64(ix.base)
		vec := ix.slices[d][dv]
		st.VectorsRead++
		st.WordsRead += vec.Words()
		st.BoolOps++
		out.And(vec)
	}
	return out, st
}

// lt computes rows with key < c digit by digit from the most significant
// position: lt = OR_d ( eq-so-far AND digit_d < c_d ), the O'Neil–Quass
// algorithm generalized to base b.
func (ix *BaseBIndex) lt(c uint64) (lt, eq *bitvec.Vector, st iostat.Stats) {
	eq = bitvec.New(ix.n)
	eq.Fill()
	lt = bitvec.New(ix.n)
	if c >= ix.Capacity() {
		lt.Fill()
		eq.Reset()
		return lt, eq, st
	}
	// Extract digits MSB first.
	digits := make([]int, ix.digits)
	rest := c
	for d := 0; d < ix.digits; d++ {
		digits[d] = int(rest % uint64(ix.base))
		rest /= uint64(ix.base)
	}
	for d := ix.digits - 1; d >= 0; d-- {
		cd := digits[d]
		// Rows with this digit below cd, while equal so far, are smaller.
		if cd > 0 {
			below := bitvec.New(ix.n)
			for v := 0; v < cd; v++ {
				vec := ix.slices[d][v]
				st.VectorsRead++
				st.WordsRead += vec.Words()
				st.BoolOps++
				below.Or(vec)
			}
			lt.Or(bitvec.And(below, eq))
			st.BoolOps += 2
		}
		vec := ix.slices[d][cd]
		st.VectorsRead++
		st.WordsRead += vec.Words()
		st.BoolOps++
		eq.And(vec)
	}
	return lt, eq, st
}

// Range returns rows with lo <= key <= hi.
func (ix *BaseBIndex) Range(lo, hi uint64) (*bitvec.Vector, iostat.Stats) {
	var st iostat.Stats
	if lo > hi {
		return bitvec.New(ix.n), st
	}
	ltHi, eqHi, s1 := ix.lt(hi)
	st.Add(s1)
	le := ltHi.Or(eqHi)
	st.BoolOps++
	if lo == 0 {
		return le, st
	}
	ltLo, _, s2 := ix.lt(lo)
	st.Add(s2)
	st.BoolOps++
	return le.AndNot(ltLo), st
}

// Sum computes the key sum over the row set directly on the slices:
// Σ_d b^d · Σ_v v · popcount(slice[d][v] AND rows).
func (ix *BaseBIndex) Sum(rows *bitvec.Vector) (uint64, iostat.Stats) {
	var st iostat.Stats
	var sum uint64
	weight := uint64(1)
	for d := 0; d < ix.digits; d++ {
		for v := 1; v < ix.base; v++ {
			vec := ix.slices[d][v]
			st.VectorsRead++
			st.WordsRead += vec.Words()
			st.BoolOps++
			sum += weight * uint64(v) * uint64(bitvec.And(vec, rows).Count())
		}
		weight *= uint64(ix.base)
	}
	return sum, st
}

// ValueAt reconstructs a row's key.
func (ix *BaseBIndex) ValueAt(row int) uint64 {
	var v uint64
	weight := uint64(1)
	for d := 0; d < ix.digits; d++ {
		for val, vec := range ix.slices[d] {
			if vec.Get(row) {
				v += weight * uint64(val)
				break
			}
		}
		weight *= uint64(ix.base)
	}
	return v
}
