package bsi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseBValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBaseB(1, 3) },
		func() { NewBaseB(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBaseBShapes(t *testing.T) {
	ix := BuildBaseB([]uint64{0, 5, 99}, 10)
	if ix.Base() != 10 || ix.Digits() != 2 || ix.NumVectors() != 20 {
		t.Fatalf("base=%d digits=%d vectors=%d", ix.Base(), ix.Digits(), ix.NumVectors())
	}
	if ix.Capacity() != 100 || ix.Len() != 3 {
		t.Fatalf("capacity=%d len=%d", ix.Capacity(), ix.Len())
	}
	// 100 forces a third digit.
	ix = BuildBaseB([]uint64{100}, 10)
	if ix.Digits() != 3 {
		t.Fatalf("digits=%d, want 3", ix.Digits())
	}
	if ix.SizeBytes() == 0 {
		t.Fatal("SizeBytes zero")
	}
}

func TestBaseBAppendOverflowPanics(t *testing.T) {
	ix := NewBaseB(10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Append(100)
}

func TestBaseBEqRange(t *testing.T) {
	col := []uint64{5, 0, 77, 5, 33, 99}
	ix := BuildBaseB(col, 10)
	rows, st := ix.Eq(5)
	if rows.String() != "100100" {
		t.Fatalf("Eq(5) = %s", rows.String())
	}
	if st.VectorsRead != ix.Digits() {
		t.Fatalf("Eq reads %d vectors, want digits=%d", st.VectorsRead, ix.Digits())
	}
	rows, _ = ix.Eq(1000)
	if rows.Any() {
		t.Fatal("out-of-capacity Eq should be empty")
	}
	cases := []struct {
		lo, hi uint64
		want   string
	}{
		{0, 99, "111111"},
		{5, 77, "101110"},
		{33, 33, "000010"},
		{78, 98, "000000"},
		{99, 5, "000000"},
	}
	for _, c := range cases {
		rows, _ := ix.Range(c.lo, c.hi)
		if rows.String() != c.want {
			t.Errorf("Range(%d,%d) = %s, want %s", c.lo, c.hi, rows.String(), c.want)
		}
	}
}

func TestBaseBSumAndValueAt(t *testing.T) {
	col := []uint64{5, 0, 77, 5, 33, 99}
	ix := BuildBaseB(col, 10)
	all, _ := ix.Range(0, 99)
	sum, _ := ix.Sum(all)
	if sum != 219 {
		t.Fatalf("Sum = %d, want 219", sum)
	}
	for i, want := range col {
		if got := ix.ValueAt(i); got != want {
			t.Fatalf("ValueAt(%d) = %d, want %d", i, got, want)
		}
	}
}

// Property: base-b results agree with the binary bit-sliced index on
// random data and bounds, across several bases.
func TestPropBaseBMatchesBinary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := []int{3, 4, 10, 16}[r.Intn(4)]
		n := 1 + r.Intn(300)
		maxV := uint64(1 + r.Intn(800))
		col := make([]uint64, n)
		for i := range col {
			col[i] = uint64(r.Intn(int(maxV)))
		}
		bb := BuildBaseB(col, base)
		bin := Build(col)
		lo := uint64(r.Intn(int(maxV)))
		hi := uint64(r.Intn(int(maxV)))
		a, _ := bb.Range(lo, hi)
		b, _ := bin.Range(lo, hi)
		if !a.Equal(b) {
			return false
		}
		v := uint64(r.Intn(int(maxV)))
		ea, _ := bb.Eq(v)
		eb, _ := bin.Eq(v)
		if !ea.Equal(eb) {
			return false
		}
		sa, _ := bb.Sum(a)
		sb, _ := bin.Sum(b)
		return sa == sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The space/equality tradeoff: base 10 over [0,1000) uses 30 vectors and
// 3-read equality; base 2 uses 10 vectors and 10-read equality.
func TestBaseBTradeoffShape(t *testing.T) {
	col := make([]uint64, 1000)
	for i := range col {
		col[i] = uint64(i % 1000)
	}
	b10 := BuildBaseB(col, 10)
	b2 := Build(col)
	if b10.NumVectors() != 30 || b2.K() != 10 {
		t.Fatalf("vectors: base10=%d binary=%d", b10.NumVectors(), b2.K())
	}
	_, st10 := b10.Eq(123)
	_, st2 := b2.Eq(123)
	if st10.VectorsRead != 3 || st2.VectorsRead != 10 {
		t.Fatalf("Eq reads: base10=%d binary=%d", st10.VectorsRead, st2.VectorsRead)
	}
}
