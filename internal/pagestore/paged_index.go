package pagestore

import (
	"context"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/iostat"
	"repro/internal/obs"
)

// PagedIndex charges an encoded bitmap index's vector reads against a
// simulated buffer cache: each query asks the index which B_i its reduced
// retrieval expression touches and faults the corresponding page runs.
// Every page request also lands in a per-segment Heatmap, so observed
// access skew is available at /debug/heatmap once RegisterHeatmap runs.
type PagedIndex[V comparable] struct {
	ix     *core.Index[V]
	cache  *Cache
	layout Layout
	heat   *Heatmap
}

// NewPagedIndex wraps an index with a buffer cache of the given page
// capacity and page size.
func NewPagedIndex[V comparable](ix *core.Index[V], cachePages, pageSize int) *PagedIndex[V] {
	layout := NewLayout(ix.Len(), pageSize)
	return &PagedIndex[V]{
		ix:     ix,
		cache:  NewCache(cachePages),
		layout: layout,
		heat:   NewHeatmap(ix.K(), layout),
	}
}

// Index returns the wrapped index.
func (p *PagedIndex[V]) Index() *core.Index[V] { return p.ix }

// Cache returns the buffer cache for inspection.
func (p *PagedIndex[V]) Cache() *Cache { return p.cache }

// Heat returns the page-access heatmap.
func (p *PagedIndex[V]) Heat() *Heatmap { return p.heat }

// RegisterHeatmap publishes this index's heatmap at /debug/heatmap
// under name. Call UnregisterHeatmap when retiring the index.
func (p *PagedIndex[V]) RegisterHeatmap(name string) {
	obs.RegisterHeatmapSource(name, func() any { return p.heat.Report() })
}

// UnregisterHeatmap removes the /debug/heatmap registration.
func (p *PagedIndex[V]) UnregisterHeatmap(name string) {
	obs.UnregisterHeatmapSource(name)
}

// chargeVars faults the pages of every vector in the vars bitmask and
// returns (hits, misses).
func (p *PagedIndex[V]) chargeVars(vars uint32) (hits, misses int) {
	per := p.layout.PagesPerVector()
	for i := 0; i < p.ix.K(); i++ {
		if vars&(1<<uint(i)) == 0 {
			continue
		}
		for pg := 0; pg < per; pg++ {
			if p.cache.Touch(PageID{Vector: i, Page: pg}) {
				hits++
				p.heat.record(i, pg, false)
			} else {
				misses++
				p.heat.record(i, pg, true)
			}
		}
	}
	return hits, misses
}

// In evaluates the selection, charging page I/O for the vectors its
// reduced expression reads. The returned PageStats are for this call.
// The evaluation itself goes through the wrapped index's fused
// single-pass kernel; the page charge is computed from the expression's
// variable set, which the fused path reads exactly once each.
func (p *PagedIndex[V]) In(values []V) (*bitvec.Vector, iostat.Stats, Stats) {
	return p.InContext(context.Background(), values)
}

// InContext is In with trace attribution: when the context carries a
// live span, the page-fault charge runs under a child span named
// "ebi.page.fetch" annotated with this call's hits and misses, so page
// I/O shows up in the query's span tree. Without a span in the context
// it is exactly In.
func (p *PagedIndex[V]) InContext(ctx context.Context, values []V) (*bitvec.Vector, iostat.Stats, Stats) {
	expr := p.ix.ExprFor(values)
	fsp := obs.SpanFromContext(ctx).StartChild("ebi.page.fetch")
	hits, misses := p.chargeVars(expr.Vars())
	if fsp != nil {
		fsp.SetAttr("page_hits", hits)
		fsp.SetAttr("page_misses", misses)
		fsp.End()
	}
	rows, st := p.ix.In(values)
	if got := bits.OnesCount32(expr.Vars()); st.VectorsRead != got {
		// Defensive: the charge must match the evaluation.
		st.VectorsRead = got
	}
	return rows, st, Stats{Hits: hits, Misses: misses}
}

// Eq evaluates a point selection with page accounting.
func (p *PagedIndex[V]) Eq(v V) (*bitvec.Vector, iostat.Stats, Stats) {
	return p.In([]V{v})
}
