package pagestore

import (
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/iostat"
)

// PagedIndex charges an encoded bitmap index's vector reads against a
// simulated buffer cache: each query asks the index which B_i its reduced
// retrieval expression touches and faults the corresponding page runs.
type PagedIndex[V comparable] struct {
	ix     *core.Index[V]
	cache  *Cache
	layout Layout
}

// NewPagedIndex wraps an index with a buffer cache of the given page
// capacity and page size.
func NewPagedIndex[V comparable](ix *core.Index[V], cachePages, pageSize int) *PagedIndex[V] {
	return &PagedIndex[V]{
		ix:     ix,
		cache:  NewCache(cachePages),
		layout: NewLayout(ix.Len(), pageSize),
	}
}

// Index returns the wrapped index.
func (p *PagedIndex[V]) Index() *core.Index[V] { return p.ix }

// Cache returns the buffer cache for inspection.
func (p *PagedIndex[V]) Cache() *Cache { return p.cache }

// chargeVars faults the pages of every vector in the vars bitmask and
// returns (hits, misses).
func (p *PagedIndex[V]) chargeVars(vars uint32) (hits, misses int) {
	per := p.layout.PagesPerVector()
	for i := 0; i < p.ix.K(); i++ {
		if vars&(1<<uint(i)) == 0 {
			continue
		}
		h := p.cache.ReadRun(i, per)
		hits += h
		misses += per - h
	}
	return hits, misses
}

// In evaluates the selection, charging page I/O for the vectors its
// reduced expression reads. The returned PageStats are for this call.
// The evaluation itself goes through the wrapped index's fused
// single-pass kernel; the page charge is computed from the expression's
// variable set, which the fused path reads exactly once each.
func (p *PagedIndex[V]) In(values []V) (*bitvec.Vector, iostat.Stats, Stats) {
	expr := p.ix.ExprFor(values)
	hits, misses := p.chargeVars(expr.Vars())
	rows, st := p.ix.In(values)
	if got := bits.OnesCount32(expr.Vars()); st.VectorsRead != got {
		// Defensive: the charge must match the evaluation.
		st.VectorsRead = got
	}
	return rows, st, Stats{Hits: hits, Misses: misses}
}

// Eq evaluates a point selection with page accounting.
func (p *PagedIndex[V]) Eq(v V) (*bitvec.Vector, iostat.Stats, Stats) {
	return p.In([]V{v})
}
