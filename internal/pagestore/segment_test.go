package pagestore

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
)

func TestLayoutSegments(t *testing.T) {
	cases := []struct{ rows, want int }{
		{0, 0}, {1, 1}, {bitvec.SegmentBits, 1},
		{bitvec.SegmentBits + 1, 2}, {3 * bitvec.SegmentBits, 3},
	}
	for _, c := range cases {
		l := NewLayout(c.rows, 4096)
		if got := l.Segments(); got != c.want {
			t.Errorf("rows=%d: Segments() = %d, want %d", c.rows, got, c.want)
		}
	}
}

func TestSegmentPageSpanCoversAllPages(t *testing.T) {
	for _, pageSize := range []int{512, 4096, 8192, 3000} { // 3000: straddling pages
		for _, rows := range []int{100, bitvec.SegmentBits, 2*bitvec.SegmentBits + 999} {
			l := NewLayout(rows, pageSize)
			covered := make(map[int]bool)
			for s := 0; s < l.Segments(); s++ {
				lo, hi := l.SegmentPageSpan(s)
				if lo < 0 || hi < lo || hi > l.PagesPerVector() {
					t.Fatalf("pageSize=%d rows=%d seg=%d: span [%d,%d) outside [0,%d]",
						pageSize, rows, s, lo, hi, l.PagesPerVector())
				}
				for p := lo; p < hi; p++ {
					covered[p] = true
				}
			}
			if len(covered) != l.PagesPerVector() {
				t.Fatalf("pageSize=%d rows=%d: spans cover %d pages, vector has %d",
					pageSize, rows, len(covered), l.PagesPerVector())
			}
		}
	}
}

func TestReadPages(t *testing.T) {
	c := NewCache(16)
	if hits := c.ReadPages(0, 0, 4); hits != 0 {
		t.Fatalf("cold ReadPages hit %d", hits)
	}
	if hits := c.ReadPages(0, 2, 6); hits != 2 {
		t.Fatalf("overlapping ReadPages hit %d, want 2", hits)
	}
	if hits := c.ReadPages(1, 0, 2); hits != 0 {
		t.Fatalf("other vector hit %d, want 0", hits)
	}
}

func TestPagedIndexInParallelMatchesIn(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	rows := bitvec.SegmentBits + 4321
	column := make([]int64, rows)
	for i := range column {
		column[i] = int64(r.Intn(16))
	}
	ix, err := core.Build(column, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqIx, err := core.Build(column, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4KiB pages divide the 8KiB segment payload evenly, so segment-major
	// charging touches exactly the pages vector-major charging does.
	par := NewPagedIndex(ix, 4096, 4096)
	seq := NewPagedIndex(seqIx, 4096, 4096)

	vals := []int64{1, 2, 3}
	seqRows, seqSt, seqPg := seq.In(vals)
	parRows, parSt, parPg := par.InParallel(vals, 4)
	if !parRows.Equal(seqRows) {
		t.Fatal("InParallel rows differ from In")
	}
	if parSt != seqSt {
		t.Fatalf("InParallel stats %+v, want %+v", parSt, seqSt)
	}
	if parPg.Misses != seqPg.Misses || parPg.Hits != seqPg.Hits {
		t.Fatalf("cold-cache page stats %+v, want %+v", parPg, seqPg)
	}

	// Warm cache: the same selection faults nothing.
	_, _, warm := par.InParallel(vals, 4)
	if warm.Misses != 0 || warm.Hits != seqPg.Hits+seqPg.Misses {
		t.Fatalf("warm page stats %+v, want all-hit", warm)
	}
}
