package pagestore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestHeatmapCountsTouchesAndMisses(t *testing.T) {
	column := make([]int64, 2000)
	for i := range column {
		column[i] = int64(i % 8)
	}
	ix, err := core.Build(column, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPagedIndex(ix, 64, 64)

	_, _, st := p.In([]int64{1})
	rep := p.Heat().Report()
	if rep.TotalTouches == 0 {
		t.Fatal("no touches recorded")
	}
	if rep.TotalTouches != uint64(st.Hits+st.Misses) {
		t.Fatalf("heatmap touches %d != cache traffic %d", rep.TotalTouches, st.Hits+st.Misses)
	}
	if rep.TotalMisses != uint64(st.Misses) {
		t.Fatalf("heatmap misses %d != cache misses %d", rep.TotalMisses, st.Misses)
	}
	if len(rep.Vectors) != ix.K() {
		t.Fatalf("vectors = %d, want k=%d", len(rep.Vectors), ix.K())
	}

	// A warm re-run touches the same pages with no new misses.
	_, _, st2 := p.In([]int64{1})
	rep2 := p.Heat().Report()
	if st2.Misses != 0 {
		t.Fatalf("warm run missed %d pages", st2.Misses)
	}
	if rep2.TotalTouches != 2*rep.TotalTouches {
		t.Fatalf("touches after warm run = %d, want %d", rep2.TotalTouches, 2*rep.TotalTouches)
	}
	if rep2.TotalMisses != rep.TotalMisses {
		t.Fatal("warm run added misses to the heatmap")
	}
	if rep2.Skew < 1 {
		t.Fatalf("skew = %v, want >= 1 (hottest/mean)", rep2.Skew)
	}
}

func TestHeatmapNilAndBoundsSafe(t *testing.T) {
	var h *Heatmap
	h.record(0, 0, true)
	if rep := h.Report(); rep.TotalTouches != 0 {
		t.Fatal("nil heatmap reported traffic")
	}
	hm := NewHeatmap(2, NewLayout(100, 64))
	hm.record(-1, 0, false)
	hm.record(5, 0, false)
	hm.record(0, 1<<20, false) // page past the end clamps to the last segment
	rep := hm.Report()
	if rep.TotalTouches != 1 {
		t.Fatalf("touches = %d, want 1 (out-of-range vector dropped, page clamped)", rep.TotalTouches)
	}
}

func TestRegisterHeatmapPublishesReport(t *testing.T) {
	column := make([]int64, 500)
	ix, err := core.Build(column, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPagedIndex(ix, 16, 64)
	p.RegisterHeatmap("test-paged")
	defer p.UnregisterHeatmap("test-paged")
	p.In([]int64{0})

	snap := obs.HeatmapSnapshot()
	got, ok := snap["test-paged"].(HeatReport)
	if !ok {
		t.Fatalf("snapshot entry = %T, want HeatReport", snap["test-paged"])
	}
	if got.TotalTouches == 0 {
		t.Fatal("published report has no traffic")
	}
	p.UnregisterHeatmap("test-paged")
	if _, ok := obs.HeatmapSnapshot()["test-paged"]; ok {
		t.Fatal("unregister left the source behind")
	}
}
