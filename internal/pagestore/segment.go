package pagestore

import (
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/iostat"
)

// SegmentBytes is the payload one bitvec segment contributes to a stored
// vector: 64Ki bits = 8KiB.
const SegmentBytes = bitvec.SegmentBits / 8

// Segments returns how many execution segments cover one stored vector.
func (l Layout) Segments() int {
	if l.RowBytes == 0 {
		return 0
	}
	return (l.RowBytes + SegmentBytes - 1) / SegmentBytes
}

// SegmentPageSpan returns the page range [lo, hi) holding segment seg's
// bytes. A page straddling a segment boundary appears in both segments'
// spans — both executors need it resident.
func (l Layout) SegmentPageSpan(seg int) (lo, hi int) {
	byteLo := seg * SegmentBytes
	byteHi := byteLo + SegmentBytes
	if byteHi > l.RowBytes {
		byteHi = l.RowBytes
	}
	return byteLo / l.PageSize, (byteHi + l.PageSize - 1) / l.PageSize
}

// ReadPages requests pages [lo, hi) of a vector, returning how many hit.
func (c *Cache) ReadPages(vector, lo, hi int) (hits int) {
	for p := lo; p < hi; p++ {
		if c.Touch(PageID{Vector: vector, Page: p}) {
			hits++
		}
	}
	return hits
}

// chargeVarsSegmented faults the pages of every vector in the vars
// bitmask in segment-major order — the order the segmented parallel
// engine demands them: all touched vectors' pages for segment 0, then
// segment 1, and so on. The page set is identical to chargeVars' (modulo
// boundary pages shared by adjacent segments); only the LRU access order
// differs, which is exactly the locality effect worth modeling.
func (p *PagedIndex[V]) chargeVarsSegmented(vars uint32) (hits, misses int) {
	for seg := 0; seg < p.layout.Segments(); seg++ {
		lo, hi := p.layout.SegmentPageSpan(seg)
		for i := 0; i < p.ix.K(); i++ {
			if vars&(1<<uint(i)) == 0 {
				continue
			}
			for pg := lo; pg < hi; pg++ {
				if p.cache.Touch(PageID{Vector: i, Page: pg}) {
					hits++
					p.heat.record(i, pg, false)
				} else {
					misses++
					p.heat.record(i, pg, true)
				}
			}
		}
	}
	return hits, misses
}

// InParallel evaluates the selection with the segmented parallel engine,
// charging page I/O in the per-segment interleaved order the engine
// reads. The cache is not safe for concurrent use, so the charge happens
// up front on the calling goroutine — it models the access pattern, not
// the timing — and the row evaluation then fans out across segments.
func (p *PagedIndex[V]) InParallel(values []V, degree int) (*bitvec.Vector, iostat.Stats, Stats) {
	expr := p.ix.ExprFor(values)
	hits, misses := p.chargeVarsSegmented(expr.Vars())
	rows, st := p.ix.InParallel(values, degree)
	if got := bits.OnesCount32(expr.Vars()); st.VectorsRead != got {
		// Defensive: the charge must match the evaluation.
		st.VectorsRead = got
	}
	return rows, st, Stats{Hits: hits, Misses: misses}
}
