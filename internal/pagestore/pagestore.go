// Package pagestore simulates the disk layer the paper's cost model
// assumes (footnote 4: "comparing with the disk access costs, it is
// reasonable to ignore the CPU time"). Bitmap vectors are laid out as
// runs of fixed-size pages; a buffer cache with LRU replacement tracks
// which vector reads actually hit the disk. Wrapping an encoded bitmap
// index in a PagedIndex turns the paper's "number of bitmap vectors
// accessed" into page faults, including the caching effects repeated
// predefined selections enjoy.
package pagestore

import (
	"container/list"
	"fmt"

	"repro/internal/obs"
)

// Buffer-cache telemetry: every Touch is one page request; misses are the
// page reads that would hit disk in the paper's footnote-4 model.
var (
	mPageHits = obs.Default().Counter("ebi_page_cache_hits_total",
		"Page requests served from the buffer cache.")
	mPageMisses = obs.Default().Counter("ebi_page_cache_misses_total",
		"Page requests that went to disk (buffer-cache misses).")
	mPageEvictions = obs.Default().Counter("ebi_page_cache_evictions_total",
		"Pages evicted from the buffer cache.")
)

// PageID identifies one page of one stored vector.
type PageID struct {
	Vector int
	Page   int
}

// Stats counts simulated I/O.
type Stats struct {
	Hits      int // page requests served from the buffer cache
	Misses    int // page requests that went to "disk"
	Evictions int
}

// HitRate returns hits / (hits+misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is an LRU buffer cache over pages.
type Cache struct {
	capacity int
	lru      *list.List               // front = most recent
	pages    map[PageID]*list.Element // element value is PageID
	stats    Stats
}

// NewCache returns a cache holding up to capacity pages. Capacity must be
// positive.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("pagestore: capacity %d <= 0", capacity))
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[PageID]*list.Element, capacity),
	}
}

// Capacity returns the page capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident pages.
func (c *Cache) Len() int { return c.lru.Len() }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without evicting pages.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Touch requests one page, returning true on a cache hit.
func (c *Cache) Touch(id PageID) bool {
	if el, ok := c.pages[id]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		mPageHits.Inc()
		return true
	}
	c.stats.Misses++
	mPageMisses.Inc()
	if c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.pages, oldest.Value.(PageID))
		c.stats.Evictions++
		mPageEvictions.Inc()
	}
	c.pages[id] = c.lru.PushFront(id)
	return false
}

// ReadRun requests pages [0, nPages) of a vector, returning how many hit.
func (c *Cache) ReadRun(vector, nPages int) (hits int) {
	for p := 0; p < nPages; p++ {
		if c.Touch(PageID{Vector: vector, Page: p}) {
			hits++
		}
	}
	return hits
}

// Layout describes how vectors map onto pages.
type Layout struct {
	PageSize int // bytes per page
	RowBytes int // bytes per vector: ceil(rows/8), fixed per store
}

// NewLayout builds a layout for vectors over the given row count.
func NewLayout(rows, pageSize int) Layout {
	if pageSize <= 0 {
		panic(fmt.Sprintf("pagestore: page size %d <= 0", pageSize))
	}
	if rows < 0 {
		panic("pagestore: negative rows")
	}
	return Layout{PageSize: pageSize, RowBytes: (rows + 7) / 8}
}

// PagesPerVector returns how many pages one bitmap vector occupies.
func (l Layout) PagesPerVector() int {
	if l.RowBytes == 0 {
		return 0
	}
	return (l.RowBytes + l.PageSize - 1) / l.PageSize
}
