package pagestore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(2)
	if c.Capacity() != 2 || c.Len() != 0 {
		t.Fatal("fresh cache wrong")
	}
	a, b, d := PageID{0, 0}, PageID{0, 1}, PageID{1, 0}
	if c.Touch(a) {
		t.Fatal("cold read reported as hit")
	}
	if !c.Touch(a) {
		t.Fatal("warm read reported as miss")
	}
	c.Touch(b)
	// a is MRU after... b was just touched; touch a to make b the LRU.
	c.Touch(a)
	c.Touch(d) // evicts b
	if c.Touch(b) {
		t.Fatal("evicted page reported as hit")
	}
	st := c.Stats()
	if st.Evictions < 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Fatalf("HitRate = %v", st.HitRate())
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats failed")
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty HitRate should be 0")
	}
}

func TestCacheValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 should panic")
		}
	}()
	NewCache(0)
}

func TestLayout(t *testing.T) {
	l := NewLayout(100000, 4096)
	if l.RowBytes != 12500 || l.PagesPerVector() != 4 {
		t.Fatalf("layout = %+v pages=%d", l, l.PagesPerVector())
	}
	if NewLayout(0, 4096).PagesPerVector() != 0 {
		t.Fatal("zero rows should need zero pages")
	}
	for _, fn := range []func(){
		func() { NewLayout(10, 0) },
		func() { NewLayout(-1, 4096) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPagedIndexCachingEffect(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	column := make([]int64, 200000)
	for i := range column {
		column[i] = int64(r.Intn(64))
	}
	ix, err := core.Build(column, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cache big enough for the whole index.
	p := NewPagedIndex(ix, 1024, 4096)
	sel := []int64{1, 2, 3, 4}

	_, st1, pg1 := p.In(sel)
	if pg1.Hits != 0 || pg1.Misses == 0 {
		t.Fatalf("cold run: %+v", pg1)
	}
	// Page faults must correspond to the vectors actually read.
	per := p.layout.PagesPerVector()
	if pg1.Misses != st1.VectorsRead*per {
		t.Fatalf("cold misses %d != vectors %d x pages %d", pg1.Misses, st1.VectorsRead, per)
	}
	// Warm run: everything hits.
	rows2, _, pg2 := p.In(sel)
	if pg2.Misses != 0 || pg2.Hits != pg1.Misses {
		t.Fatalf("warm run: %+v", pg2)
	}
	if rows2.Count() == 0 {
		t.Fatal("selection empty")
	}
	// Eq path shares the machinery.
	_, _, pg3 := p.Eq(1)
	if pg3.Misses != 0 && pg3.Hits == 0 {
		t.Fatalf("Eq after warmup: %+v", pg3)
	}
	if p.Index() != ix || p.Cache() == nil {
		t.Fatal("accessors wrong")
	}
}

func TestPagedIndexThrashingSmallCache(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	column := make([]int64, 300000)
	for i := range column {
		column[i] = int64(r.Intn(1000))
	}
	ix, err := core.Build(column, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cache holds only 2 pages: repeated multi-vector queries must thrash.
	p := NewPagedIndex(ix, 2, 4096)
	_, _, cold := p.In([]int64{1, 2, 3})
	_, _, warm := p.In([]int64{1, 2, 3})
	if warm.Misses == 0 {
		t.Fatalf("tiny cache should thrash: warm=%+v cold=%+v", warm, cold)
	}
}

// Property: for any selection, cold misses = distinct vectors read x
// pages per vector, and an immediately repeated identical query on an
// ample cache is all hits.
func TestPropPagedAccounting(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1000 + r.Intn(5000)
		m := 2 + r.Intn(40)
		column := make([]int64, n)
		for i := range column {
			column[i] = int64(r.Intn(m))
		}
		ix, err := core.Build(column, nil, nil)
		if err != nil {
			return false
		}
		p := NewPagedIndex(ix, 4096, 512)
		var sel []int64
		for v := 0; v < m; v++ {
			if r.Intn(2) == 0 {
				sel = append(sel, int64(v))
			}
		}
		_, st, cold := p.In(sel)
		if cold.Misses != st.VectorsRead*p.layout.PagesPerVector() {
			return false
		}
		_, _, warm := p.In(sel)
		return warm.Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
