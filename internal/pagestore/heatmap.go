package pagestore

import "sync"

// Heatmap counts page accesses per (vector, segment-aligned page run).
// Each bucket is one execution segment's worth of one bitmap vector —
// the same 64Ki-bit granularity the parallel engine partitions by — so
// the report directly shows which shard-sized slices of the index are
// hot. Row-reordering and sharding decisions (ROADMAP items 3 and 4)
// read observed skew from here instead of guessing from the cost model.
//
// The map has its own lock because /debug/heatmap snapshots it from the
// HTTP goroutine while queries record into it; the page cache itself
// remains single-goroutine.
type Heatmap struct {
	mu      sync.Mutex
	layout  Layout
	touches [][]uint64 // [vector][segment] page requests
	misses  [][]uint64 // [vector][segment] page faults
}

// NewHeatmap returns a heatmap for k vectors over the given layout.
func NewHeatmap(k int, layout Layout) *Heatmap {
	segs := layout.Segments()
	if segs < 1 {
		segs = 1
	}
	h := &Heatmap{layout: layout}
	h.touches = make([][]uint64, k)
	h.misses = make([][]uint64, k)
	for i := 0; i < k; i++ {
		h.touches[i] = make([]uint64, segs)
		h.misses[i] = make([]uint64, segs)
	}
	return h
}

// record counts one page request. The page maps to the segment whose
// byte range contains its first byte; boundary pages shared by two
// segments count toward the earlier one.
func (h *Heatmap) record(vector, page int, miss bool) {
	if h == nil || vector < 0 || vector >= len(h.touches) {
		return
	}
	seg := page * h.layout.PageSize / SegmentBytes
	if seg >= len(h.touches[vector]) {
		seg = len(h.touches[vector]) - 1
	}
	h.mu.Lock()
	h.touches[vector][seg]++
	if miss {
		h.misses[vector][seg]++
	}
	h.mu.Unlock()
}

// VectorHeat is one vector's per-segment access counts.
type VectorHeat struct {
	Vector  int      `json:"vector"`
	Touches []uint64 `json:"touches"`
	Misses  []uint64 `json:"misses"`
}

// HeatReport is the /debug/heatmap payload for one paged index.
type HeatReport struct {
	PageSize     int          `json:"page_size"`
	SegmentBytes int          `json:"segment_bytes"`
	Segments     int          `json:"segments"`
	TotalTouches uint64       `json:"total_touches"`
	TotalMisses  uint64       `json:"total_misses"`
	Skew         float64      `json:"skew"` // hottest segment / mean segment, over all vectors
	Vectors      []VectorHeat `json:"vectors"`
}

// Report snapshots the heatmap.
func (h *Heatmap) Report() HeatReport {
	if h == nil {
		return HeatReport{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	segs := 0
	if len(h.touches) > 0 {
		segs = len(h.touches[0])
	}
	rep := HeatReport{
		PageSize:     h.layout.PageSize,
		SegmentBytes: SegmentBytes,
		Segments:     segs,
		Vectors:      make([]VectorHeat, len(h.touches)),
	}
	perSeg := make([]uint64, segs)
	for i := range h.touches {
		rep.Vectors[i] = VectorHeat{
			Vector:  i,
			Touches: append([]uint64(nil), h.touches[i]...),
			Misses:  append([]uint64(nil), h.misses[i]...),
		}
		for s, t := range h.touches[i] {
			perSeg[s] += t
			rep.TotalTouches += t
			rep.TotalMisses += h.misses[i][s]
		}
	}
	if rep.TotalTouches > 0 && segs > 0 {
		var max uint64
		for _, t := range perSeg {
			if t > max {
				max = t
			}
		}
		mean := float64(rep.TotalTouches) / float64(segs)
		rep.Skew = float64(max) / mean
	}
	return rep
}
