package cube_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
)

// Example rolls revenue up by region on encoded bitmap vectors.
func Example() {
	region := []string{"north", "south", "north", "south"}
	revenue := []float64{10, 20, 30, 40}
	ix, err := core.Build(region, nil, nil)
	if err != nil {
		panic(err)
	}
	c, err := cube.New(revenue, cube.Dimension{
		Name: "region", Column: ix, Label: cube.LabelFor(ix),
	})
	if err != nil {
		panic(err)
	}
	cells, err := c.RollUp(nil, "region")
	if err != nil {
		panic(err)
	}
	for _, cell := range cells {
		fmt.Printf("%s: %.0f over %d rows\n", cell.Labels[0], cell.Sum, cell.Count)
	}
	// Output:
	// south: 60 over 2 rows
	// north: 40 over 2 rows
}
