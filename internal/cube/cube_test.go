package cube

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func fixture(t testing.TB) (*Cube, []string, []int64, []float64) {
	region := []string{"n", "s", "n", "s", "n", "s"}
	tier := []int64{1, 1, 2, 2, 1, 2}
	revenue := []float64{10, 20, 30, 40, 50, 60}
	rIx, err := core.Build(region, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tIx, err := core.Build(tier, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(revenue,
		Dimension{Name: "region", Column: rIx, Label: LabelFor(rIx)},
		Dimension{Name: "tier", Column: tIx, Label: LabelFor(tIx)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c, region, tier, revenue
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{1}); err == nil {
		t.Fatal("no dimensions should error")
	}
	rIx, _ := core.Build([]string{"a"}, nil, nil)
	if _, err := New([]float64{1, 2}, Dimension{Name: "r", Column: rIx}); err == nil {
		t.Fatal("row mismatch should error")
	}
	if _, err := New([]float64{1}, Dimension{Name: "", Column: rIx}); err == nil {
		t.Fatal("unnamed dimension should error")
	}
	if _, err := New([]float64{1},
		Dimension{Name: "r", Column: rIx}, Dimension{Name: "r", Column: rIx}); err == nil {
		t.Fatal("duplicate dimension should error")
	}
}

func TestRollUpTwoDims(t *testing.T) {
	c, region, tier, revenue := fixture(t)
	cells, err := c.RollUp(nil, "region", "tier")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	// Verify against a scan.
	want := map[[2]string]float64{}
	for i := range region {
		key := [2]string{region[i], labelInt(tier[i])}
		want[key] += revenue[i]
	}
	for _, cell := range cells {
		if len(cell.Labels) != 2 {
			t.Fatalf("labels = %v", cell.Labels)
		}
		if math.Abs(cell.Sum-want[[2]string{cell.Labels[0], cell.Labels[1]}]) > 1e-9 {
			t.Fatalf("cell %v sum %v, want %v", cell.Labels, cell.Sum, want)
		}
	}
	// Descending by Sum.
	for i := 1; i < len(cells); i++ {
		if cells[i].Sum > cells[i-1].Sum {
			t.Fatal("cells not sorted by sum")
		}
	}
}

func labelInt(v int64) string {
	return map[int64]string{1: "1", 2: "2"}[v]
}

func TestRollUpIsDrillDownInverse(t *testing.T) {
	c, _, _, revenue := fixture(t)
	byRegion, err := c.RollUp(nil, "region")
	if err != nil {
		t.Fatal(err)
	}
	if len(byRegion) != 2 {
		t.Fatalf("by region: %d cells", len(byRegion))
	}
	// Each region total equals the sum of its drill-down cells.
	detail, err := c.RollUp(nil, "region", "tier")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range byRegion {
		var sum float64
		for _, d := range detail {
			if d.Labels[0] == r.Labels[0] {
				sum += d.Sum
			}
		}
		if math.Abs(sum-r.Sum) > 1e-9 {
			t.Fatalf("drill-down of %s sums to %v, roll-up says %v", r.Labels[0], sum, r.Sum)
		}
	}
	// The apex equals the measure total.
	count, total := c.Total(nil)
	var want float64
	for _, v := range revenue {
		want += v
	}
	if count != len(revenue) || math.Abs(total-want) > 1e-9 {
		t.Fatalf("Total = %d, %v", count, total)
	}
}

func TestRollUpWithSelection(t *testing.T) {
	c, region, _, revenue := fixture(t)
	// Select rows 0..2 only.
	ix, _ := core.Build(region, nil, nil)
	sel, _ := ix.In([]string{"n"})
	cells, err := c.RollUp(sel, "tier")
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, cell := range cells {
		got += cell.Sum
	}
	var want float64
	for i, r := range region {
		if r == "n" {
			want += revenue[i]
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("selected roll-up sums to %v, want %v", got, want)
	}
	count, total := c.Total(sel)
	if count != sel.Count() || math.Abs(total-want) > 1e-9 {
		t.Fatalf("Total over selection = %d, %v", count, total)
	}
	if _, err := c.RollUp(nil, "nope"); err == nil {
		t.Fatal("unknown dimension should error")
	}
	if _, err := c.RollUp(nil); err == nil {
		t.Fatal("no dimensions should error")
	}
}

// Property: roll-up cell sums always add to the selection total, for any
// dimension subset.
func TestPropRollUpConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		a := make([]int64, n)
		b := make([]int64, n)
		measure := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = int64(r.Intn(6))
			b[i] = int64(r.Intn(4))
			measure[i] = float64(r.Intn(100))
		}
		aIx, err := core.Build(a, nil, nil)
		if err != nil {
			return false
		}
		bIx, err := core.Build(b, nil, nil)
		if err != nil {
			return false
		}
		c, err := New(measure,
			Dimension{Name: "a", Column: aIx, Label: LabelFor(aIx)},
			Dimension{Name: "b", Column: bIx, Label: LabelFor(bIx)},
		)
		if err != nil {
			return false
		}
		sel, _ := aIx.In([]int64{0, 2, 4})
		_, total := c.Total(sel)
		for _, dims := range [][]string{{"a"}, {"b"}, {"a", "b"}, {"b", "a"}} {
			cells, err := c.RollUp(sel, dims...)
			if err != nil {
				return false
			}
			var sum float64
			rows := 0
			for _, cell := range cells {
				sum += cell.Sum
				rows += cell.Count
			}
			if math.Abs(sum-total) > 1e-6 || rows != sel.Count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
