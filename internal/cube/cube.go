// Package cube is a small OLAP engine over encoded bitmap indexes: the
// Section 2.3 operations — roll-ups and drill-downs along dimensions —
// computed dynamically from the per-attribute group-set vectors, with no
// precomputed aggregates. A Cube binds dimension columns (each an encoded
// bitmap index) to a measure; RollUp aggregates the measure over any
// subset of the dimensions, restricted to any selection.
package cube

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/core"
)

// Dimension is one named axis of the cube.
type Dimension struct {
	Name   string
	Column core.Column // typically *core.Index[V]
	// Label renders a code back into a display value.
	Label func(code uint32) string
}

// Cube binds dimensions and a measure over a fact table.
type Cube struct {
	dims    []Dimension
	byName  map[string]int
	measure []float64
	n       int
}

// New builds a cube. All dimension columns and the measure must cover
// the same rows.
func New(measure []float64, dims ...Dimension) (*Cube, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("cube: need at least one dimension")
	}
	c := &Cube{dims: dims, byName: make(map[string]int, len(dims)), measure: measure, n: len(measure)}
	for i, d := range dims {
		if d.Column == nil || d.Name == "" {
			return nil, fmt.Errorf("cube: dimension %d needs a name and a column", i)
		}
		if d.Column.Len() != c.n {
			return nil, fmt.Errorf("cube: dimension %s has %d rows, measure has %d", d.Name, d.Column.Len(), c.n)
		}
		if _, dup := c.byName[d.Name]; dup {
			return nil, fmt.Errorf("cube: duplicate dimension %s", d.Name)
		}
		c.byName[d.Name] = i
	}
	return c, nil
}

// Cell is one aggregated cell of a roll-up: the dimension labels (in the
// roll-up's dimension order) plus the aggregates.
type Cell struct {
	Labels []string
	Count  int
	Sum    float64
}

// RollUp groups the selected rows by the named dimensions and aggregates
// the measure. A nil selection means all rows. Cells are ordered by
// descending Sum — report-style output. Rolling up by fewer dimensions
// IS the OLAP roll-up; adding one back is the drill-down.
func (c *Cube) RollUp(sel *bitvec.Vector, dimNames ...string) ([]Cell, error) {
	if len(dimNames) == 0 {
		return nil, fmt.Errorf("cube: roll-up needs at least one dimension")
	}
	var cols []core.Column
	var dims []Dimension
	for _, name := range dimNames {
		i, ok := c.byName[name]
		if !ok {
			return nil, fmt.Errorf("cube: unknown dimension %s", name)
		}
		cols = append(cols, c.dims[i].Column)
		dims = append(dims, c.dims[i])
	}
	g, err := core.NewGroupSet(cols...)
	if err != nil {
		return nil, err
	}
	if sel == nil {
		all := bitvec.New(c.n)
		all.Fill()
		sel = all
	}
	counts := g.GroupCounts(sel)
	sums, err := g.GroupSum(sel, c.measure)
	if err != nil {
		return nil, err
	}
	out := make([]Cell, 0, len(counts))
	for key, cnt := range counts {
		parts := g.SplitKey(key)
		labels := make([]string, len(dims))
		for i, d := range dims {
			if d.Label != nil {
				labels[i] = d.Label(parts[i])
			} else {
				labels[i] = fmt.Sprintf("%s=%d", d.Name, parts[i])
			}
		}
		out = append(out, Cell{Labels: labels, Count: cnt, Sum: sums[key]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sum != out[j].Sum {
			return out[i].Sum > out[j].Sum
		}
		return lessLabels(out[i].Labels, out[j].Labels)
	})
	return out, nil
}

// Total aggregates the whole selection: the apex of the cube.
func (c *Cube) Total(sel *bitvec.Vector) (count int, sum float64) {
	if sel == nil {
		for _, v := range c.measure {
			sum += v
		}
		return c.n, sum
	}
	sel.ForEach(func(row int) bool {
		count++
		sum += c.measure[row]
		return true
	})
	return count, sum
}

// LabelFor builds a Label function from an index's mapping, rendering
// codes as their domain values.
func LabelFor[V comparable](ix *core.Index[V]) func(code uint32) string {
	m := ix.Mapping()
	return func(code uint32) string {
		if v, ok := m.ValueOf(code); ok {
			return fmt.Sprintf("%v", v)
		}
		return fmt.Sprintf("code(%d)", code)
	}
}

func lessLabels(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
