// Package bitvec implements the dense bit-vector kernel underlying every
// bitmap index in this repository.
//
// A Vector is a growable sequence of bits addressed from position 0. All
// bulk Boolean operations (And, Or, Xor, AndNot, Not) work a 64-bit word at
// a time, which is the property bitmap indexes rely on for their
// "cooperativity": combining two selection conditions costs one pass over
// the vectors rather than a tree traversal per condition.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a dense bit vector. The zero value is an empty vector ready to
// use. Bits beyond Len are always zero in the backing words; every mutating
// operation maintains that invariant so popcounts and comparisons never see
// stale tail bits.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a vector of n bits, all zero.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, wordsFor(n)), n: n}
}

// FromBools builds a vector from a slice of booleans.
func FromBools(bs []bool) *Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i)
		}
	}
	return v
}

// FromIndices builds a vector of n bits with the given positions set.
func FromIndices(n int, idx []int) *Vector {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words returns the number of backing 64-bit words. This is the unit of
// work for the scan-cost accounting in internal/iostat.
func (v *Vector) Words() int { return len(v.words) }

// SizeBytes returns the in-memory size of the bit payload in bytes.
func (v *Vector) SizeBytes() int { return len(v.words) * 8 }

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetTo sets bit i to b.
func (v *Vector) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Append adds one bit at the end, growing the vector. Bitmap indexes use
// this for the paper's "updates without domain expansion": an insert
// appends one bit to each vector.
func (v *Vector) Append(b bool) {
	if v.n%wordBits == 0 {
		v.words = append(v.words, 0)
	}
	v.n++
	if b {
		v.Set(v.n - 1)
	}
}

// Grow extends the vector to n bits, padding with zeros. It is a no-op if
// the vector is already at least n bits long.
func (v *Vector) Grow(n int) {
	if n <= v.n {
		return
	}
	need := wordsFor(n)
	for len(v.words) < need {
		v.words = append(v.words, 0)
	}
	v.n = n
}

// Count returns the number of set bits (the cardinality of the row set).
func (v *Vector) Count() int {
	mPopcounts.Inc()
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(w.words, v.words)
	return w
}

// Reset clears every bit without changing the length.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Fill sets every bit to 1.
func (v *Vector) Fill() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trimTail()
}

// trimTail zeroes the bits beyond Len in the last word.
func (v *Vector) trimTail() {
	if v.n%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << (uint(v.n) % wordBits)) - 1
	}
}

func (v *Vector) sameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// And sets v = v AND o and returns v.
func (v *Vector) And(o *Vector) *Vector {
	v.sameLen(o)
	mBulkOps.Inc()
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
	return v
}

// Or sets v = v OR o and returns v.
func (v *Vector) Or(o *Vector) *Vector {
	v.sameLen(o)
	mBulkOps.Inc()
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
	return v
}

// Xor sets v = v XOR o and returns v.
func (v *Vector) Xor(o *Vector) *Vector {
	v.sameLen(o)
	mBulkOps.Inc()
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
	return v
}

// AndNot sets v = v AND NOT o and returns v.
func (v *Vector) AndNot(o *Vector) *Vector {
	v.sameLen(o)
	mBulkOps.Inc()
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
	return v
}

// Not complements every bit of v in place and returns v.
func (v *Vector) Not() *Vector {
	mBulkOps.Inc()
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trimTail()
	return v
}

// CopyFrom overwrites v's bits with o's. Lengths must match.
func (v *Vector) CopyFrom(o *Vector) *Vector {
	v.sameLen(o)
	copy(v.words, o.words)
	return v
}

// And returns a AND b as a fresh vector.
func And(a, b *Vector) *Vector { return a.Clone().And(b) }

// Or returns a OR b as a fresh vector.
func Or(a, b *Vector) *Vector { return a.Clone().Or(b) }

// Xor returns a XOR b as a fresh vector.
func Xor(a, b *Vector) *Vector { return a.Clone().Xor(b) }

// AndNot returns a AND NOT b as a fresh vector.
func AndNot(a, b *Vector) *Vector { return a.Clone().AndNot(b) }

// Not returns NOT a as a fresh vector.
func Not(a *Vector) *Vector { return a.Clone().Not() }

// Equal reports whether two vectors have identical length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the positions of all set bits in ascending order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// ForEach calls fn for every set bit in ascending order until fn returns
// false.
func (v *Vector) ForEach(fn func(i int) bool) {
	for wi, w := range v.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the position of the first set bit at or after i, or -1 if
// there is none.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// Rank returns the number of set bits in [0, i). Rank(Len()) == Count().
func (v *Vector) Rank(i int) int {
	mPopcounts.Inc()
	if i < 0 || i > v.n {
		panic(fmt.Sprintf("bitvec: rank index %d out of range [0,%d]", i, v.n))
	}
	full := i / wordBits
	c := 0
	for _, w := range v.words[:full] {
		c += bits.OnesCount64(w)
	}
	if rem := uint(i) % wordBits; rem != 0 {
		c += bits.OnesCount64(v.words[full] & ((1 << rem) - 1))
	}
	return c
}

// Select returns the position of the j-th set bit (0-based), or -1 if the
// vector has fewer than j+1 set bits.
func (v *Vector) Select(j int) int {
	if j < 0 {
		return -1
	}
	for wi, w := range v.words {
		c := bits.OnesCount64(w)
		if j < c {
			// Walk the word.
			for ; ; j-- {
				tz := bits.TrailingZeros64(w)
				if j == 0 {
					return wi*wordBits + tz
				}
				w &= w - 1
			}
		}
		j -= c
	}
	return -1
}

// Sparsity returns the fraction of bits that are zero (the paper's sparsity
// measure: (m-1)/m on average for a simple bitmap vector, about 1/2 for an
// encoded one).
func (v *Vector) Sparsity() float64 {
	if v.n == 0 {
		return 0
	}
	return float64(v.n-v.Count()) / float64(v.n)
}

// String renders the vector as a 0/1 string, position 0 first. Intended for
// tests and small examples only.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// MarshalBinary encodes the vector as an 8-byte little-endian length (in
// bits) followed by the backing words. It implements
// encoding.BinaryMarshaler.
func (v *Vector) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(v.words))
	putUint64(out, uint64(v.n))
	for i, w := range v.words {
		putUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary, validating the
// length and the all-zero tail invariant. It implements
// encoding.BinaryUnmarshaler.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitvec: truncated header (%d bytes)", len(data))
	}
	n := getUint64(data)
	if n > uint64(1)<<40 {
		return fmt.Errorf("bitvec: implausible length %d", n)
	}
	want := wordsFor(int(n))
	if len(data) != 8+8*want {
		return fmt.Errorf("bitvec: %d bits need %d payload bytes, got %d", n, 8*want, len(data)-8)
	}
	words := make([]uint64, want)
	for i := range words {
		words[i] = getUint64(data[8+8*i:])
	}
	if rem := n % wordBits; rem != 0 && want > 0 {
		if words[want-1]&^((1<<rem)-1) != 0 {
			return fmt.Errorf("bitvec: nonzero bits beyond length %d", n)
		}
	}
	v.words = words
	v.n = int(n)
	return nil
}

func putUint64(b []byte, x uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * uint(i)))
	}
}

func getUint64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << (8 * uint(i))
	}
	return x
}

// Parse builds a vector from a 0/1 string as produced by String.
func Parse(s string) (*Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			v.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at %d", s[i], i)
		}
	}
	return v, nil
}
