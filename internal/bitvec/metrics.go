package bitvec

import "repro/internal/obs"

// Kernel-level telemetry: one counter tick per bulk Boolean operation and
// per popcount pass. These count raw kernel invocations (including ones
// inside index builds), whereas the ebi_*_total counters in obs count the
// query-visible iostat.Stats; comparing the two shows how much vector
// work happens outside accounted query paths.
var (
	mBulkOps = obs.Default().Counter("ebi_bitvec_bulk_ops_total",
		"Word-at-a-time bulk Boolean operations (And/Or/Xor/AndNot/Not).")
	mPopcounts = obs.Default().Counter("ebi_bitvec_popcount_total",
		"Popcount passes (Count/Rank) over bit vectors.")
	mSegOps = obs.Default().Counter("ebi_bitvec_segment_ops_total",
		"Segment-range Boolean kernels (AndInto/OrInto/AndNotInto/NotInto).")
	mSegPopcounts = obs.Default().Counter("ebi_bitvec_segment_popcount_total",
		"Segment-range popcount passes (PopcountRange).")
)
