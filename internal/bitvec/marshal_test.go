package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		v := New(n)
		for i := 0; i < n; i += 3 {
			v.Set(i)
		}
		blob, err := v.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var w Vector
		if err := w.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		if !w.Equal(v) {
			t.Fatalf("round trip failed at n=%d", n)
		}
	}
}

func TestUnmarshalRejectsBadData(t *testing.T) {
	v := FromIndices(100, []int{1, 99})
	blob, _ := v.MarshalBinary()

	var w Vector
	if err := w.UnmarshalBinary(blob[:4]); err == nil {
		t.Error("truncated header accepted")
	}
	if err := w.UnmarshalBinary(blob[:len(blob)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	long := append(append([]byte(nil), blob...), 0)
	if err := w.UnmarshalBinary(long); err == nil {
		t.Error("oversized payload accepted")
	}
	// Nonzero tail bits beyond Len.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] |= 0x80 // bit 103 of a 100-bit vector
	if err := w.UnmarshalBinary(bad); err == nil {
		t.Error("dirty tail bits accepted")
	}
	// Implausible length.
	huge := make([]byte, 8)
	for i := range huge {
		huge[i] = 0xFF
	}
	if err := w.UnmarshalBinary(huge); err == nil {
		t.Error("implausible length accepted")
	}
}

func TestPropMarshalRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 2000)
		r := rand.New(rand.NewSource(seed))
		v := randomVec(r, n)
		blob, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var w Vector
		if err := w.UnmarshalBinary(blob); err != nil {
			return false
		}
		return w.Equal(v) && w.Count() == v.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
