package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d, want 0", v.Count())
	}
	if v.Any() {
		t.Fatal("Any on empty vector = true")
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Count() != 8 {
		t.Fatalf("Count = %d, want 8", v.Count())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	v.SetTo(64, true)
	if !v.Get(64) {
		t.Fatal("SetTo(64,true) did not set")
	}
	v.SetTo(64, false)
	if v.Get(64) {
		t.Fatal("SetTo(64,false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, fn := range []func(){
		func() { v.Get(10) },
		func() { v.Get(-1) },
		func() { v.Set(10) },
		func() { v.Clear(-1) },
		func() { v.Rank(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestAppend(t *testing.T) {
	var v Vector // zero value usable
	for i := 0; i < 300; i++ {
		v.Append(i%3 == 0)
	}
	if v.Len() != 300 {
		t.Fatalf("Len = %d, want 300", v.Len())
	}
	for i := 0; i < 300; i++ {
		if v.Get(i) != (i%3 == 0) {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), i%3 == 0)
		}
	}
}

func TestGrow(t *testing.T) {
	v := New(5)
	v.Set(4)
	v.Grow(200)
	if v.Len() != 200 {
		t.Fatalf("Len = %d, want 200", v.Len())
	}
	if !v.Get(4) || v.Get(5) || v.Get(199) {
		t.Fatal("Grow corrupted bits")
	}
	v.Grow(10) // shrink request is a no-op
	if v.Len() != 200 {
		t.Fatal("Grow shrank the vector")
	}
}

func TestFillRespectsTail(t *testing.T) {
	v := New(70)
	v.Fill()
	if v.Count() != 70 {
		t.Fatalf("Count after Fill = %d, want 70", v.Count())
	}
	v.Not()
	if v.Count() != 0 {
		t.Fatalf("Count after Fill+Not = %d, want 0", v.Count())
	}
}

func TestNotTailInvariant(t *testing.T) {
	// Not must keep bits beyond Len zero so Count stays correct.
	v := New(65)
	v.Set(0)
	v.Not()
	if v.Count() != 64 {
		t.Fatalf("Count = %d, want 64", v.Count())
	}
	if v.Get(0) {
		t.Fatal("bit 0 should be cleared by Not")
	}
}

func TestBooleanOps(t *testing.T) {
	a, err := Parse("1100101")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("1010011")
	if err != nil {
		t.Fatal(err)
	}
	if got := And(a, b).String(); got != "1000001" {
		t.Errorf("And = %s", got)
	}
	if got := Or(a, b).String(); got != "1110111" {
		t.Errorf("Or = %s", got)
	}
	if got := Xor(a, b).String(); got != "0110110" {
		t.Errorf("Xor = %s", got)
	}
	if got := AndNot(a, b).String(); got != "0100100" {
		t.Errorf("AndNot = %s", got)
	}
	if got := Not(a).String(); got != "0011010" {
		t.Errorf("Not = %s", got)
	}
	// Originals untouched by the functional forms.
	if a.String() != "1100101" || b.String() != "1010011" {
		t.Fatal("functional ops mutated operands")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(10).And(New(11))
}

func TestIndicesForEachNextSet(t *testing.T) {
	idx := []int{3, 64, 65, 100, 191}
	v := FromIndices(192, idx)
	got := v.Indices()
	if len(got) != len(idx) {
		t.Fatalf("Indices len = %d, want %d", len(got), len(idx))
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Indices[%d] = %d, want %d", i, got[i], idx[i])
		}
	}
	if v.NextSet(0) != 3 || v.NextSet(3) != 3 || v.NextSet(4) != 64 ||
		v.NextSet(66) != 100 || v.NextSet(192) != -1 || v.NextSet(101) != 191 {
		t.Fatal("NextSet wrong")
	}
	// Early termination.
	n := 0
	v.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEach visited %d, want 2", n)
	}
}

func TestRankSelect(t *testing.T) {
	v := FromIndices(300, []int{0, 5, 64, 128, 299})
	if v.Rank(0) != 0 || v.Rank(1) != 1 || v.Rank(64) != 2 || v.Rank(65) != 3 || v.Rank(300) != 5 {
		t.Fatal("Rank wrong")
	}
	wants := []int{0, 5, 64, 128, 299}
	for j, want := range wants {
		if got := v.Select(j); got != want {
			t.Fatalf("Select(%d) = %d, want %d", j, got, want)
		}
	}
	if v.Select(5) != -1 || v.Select(-1) != -1 {
		t.Fatal("Select out of range should be -1")
	}
}

func TestSparsity(t *testing.T) {
	v := New(100)
	for i := 0; i < 25; i++ {
		v.Set(i)
	}
	if got := v.Sparsity(); got != 0.75 {
		t.Fatalf("Sparsity = %v, want 0.75", got)
	}
	if New(0).Sparsity() != 0 {
		t.Fatal("Sparsity of empty vector should be 0")
	}
}

func TestCloneAndEqual(t *testing.T) {
	v := FromIndices(100, []int{1, 50, 99})
	w := v.Clone()
	if !v.Equal(w) {
		t.Fatal("clone not equal")
	}
	w.Set(2)
	if v.Equal(w) {
		t.Fatal("mutating clone affected original comparison")
	}
	if v.Get(2) {
		t.Fatal("clone shares storage with original")
	}
	if v.Equal(New(99)) {
		t.Fatal("vectors of different length reported equal")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("01x"); err == nil {
		t.Fatal("expected parse error")
	}
	v, err := Parse("")
	if err != nil || v.Len() != 0 {
		t.Fatal("empty parse should give empty vector")
	}
}

func TestCopyFromAndReset(t *testing.T) {
	a := FromIndices(70, []int{1, 69})
	b := New(70)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom failed")
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset left bits set")
	}
}

// Property: De Morgan's law NOT(a AND b) == NOT a OR NOT b.
func TestPropDeMorgan(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randomVec(r, n), randomVec(r, n)
		lhs := Not(And(a, b))
		rhs := Or(Not(a), Not(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: XOR is equivalent to (a AND NOT b) OR (b AND NOT a).
func TestPropXorDecomposition(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randomVec(r, n), randomVec(r, n)
		return Xor(a, b).Equal(Or(AndNot(a, b), AndNot(b, a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count(a) + Count(b) == Count(a OR b) + Count(a AND b).
func TestPropInclusionExclusion(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randomVec(r, n), randomVec(r, n)
		return a.Count()+b.Count() == Or(a, b).Count()+And(a, b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Rank(Select(j)) == j for every set bit, and Rank(Len) == Count.
func TestPropRankSelectInverse(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		r := rand.New(rand.NewSource(seed))
		v := randomVec(r, n)
		if v.Rank(v.Len()) != v.Count() {
			return false
		}
		for j := 0; j < v.Count(); j++ {
			p := v.Select(j)
			if p < 0 || v.Rank(p) != j || !v.Get(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: round-trip through String/Parse.
func TestPropStringRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 300)
		r := rand.New(rand.NewSource(seed))
		v := randomVec(r, n)
		w, err := Parse(v.String())
		return err == nil && v.Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomVec(r *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func BenchmarkAnd1M(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomVec(r, 1<<20)
	y := randomVec(r, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkCount1M(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomVec(r, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}
