package bitvec

// WordSource is the operand contract of the fused expression-evaluation
// kernel (internal/boolmin). It abstracts "a bit vector readable as 64-bit
// words in blocks", so the same kernel can consume dense vectors
// (zero-copy) and WAH-compressed vectors (decoded block-by-block with
// run-skipping, see internal/compress) without materializing anything.
//
// The kernel requests blocks with strictly increasing, non-overlapping,
// left-to-right word ranges covering [0, wordsFor(Len())). A dense Vector
// additionally supports random access, which the segmented parallel path
// relies on; sequential sources (compressed streams) are only legal on the
// sequential path.
type WordSource interface {
	// Len returns the logical length in bits.
	Len() int
	// StatsWords returns the number of 64-bit words one full read of the
	// operand is charged in the iostat accounting. For parity with the
	// sequential baseline this is the dense-equivalent word count
	// ceil(Len/64) regardless of the physical representation.
	StatsWords() int
	// BlockWords returns the operand's words [lo, hi). The returned slice
	// is only valid until the next BlockWords call on the same source.
	// Bits beyond Len in the final word are zero.
	BlockWords(lo, hi int) []uint64
}

// StatsWords implements WordSource: the dense word count is the backing
// size itself.
func (v *Vector) StatsWords() int { return len(v.words) }

// BlockWords implements WordSource, returning the backing words [lo, hi)
// without copying. The slice is writable: the fused kernel uses it to
// write its destination directly. Callers that write through it must
// re-establish the all-zero tail invariant with TrimTail before the
// vector is used through any other method.
func (v *Vector) BlockWords(lo, hi int) []uint64 {
	if lo < 0 || hi < lo || hi > len(v.words) {
		panic("bitvec: block word range out of bounds")
	}
	return v.words[lo:hi]
}

// TrimTail zeroes the bits beyond Len in the last backing word,
// re-establishing the invariant every exported mutator maintains. It is
// the required epilogue after writing words directly through BlockWords
// (a fused kernel's negated literals produce phantom ones past Len).
func (v *Vector) TrimTail() { v.trimTail() }
