package bitvec

import (
	"math/rand"
	"testing"
)

func TestVectorWordSource(t *testing.T) {
	v := New(200)
	for i := 0; i < 200; i += 3 {
		v.Set(i)
	}
	var _ WordSource = v
	if v.StatsWords() != v.Words() {
		t.Fatalf("StatsWords = %d, want %d", v.StatsWords(), v.Words())
	}
	// Block views alias the backing words in any order.
	if got := v.BlockWords(1, 3); len(got) != 2 || got[0] != v.words[1] || got[1] != v.words[2] {
		t.Fatalf("BlockWords(1,3) = %v", got)
	}
	if got := v.BlockWords(0, 1); got[0] != v.words[0] {
		t.Fatalf("BlockWords(0,1) = %v", got)
	}
	// Writes through a block land in the vector; TrimTail restores the
	// zero-tail invariant afterwards.
	blk := v.BlockWords(3, 4)
	blk[0] = ^uint64(0)
	v.TrimTail()
	if v.Get(199) != true || v.words[3]>>uint(200%64) != 0 {
		t.Fatal("TrimTail left phantom bits beyond Len")
	}
}

func TestVectorBlockWordsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(64).BlockWords(0, 2)
}

func TestVectorBlockWordsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	v := New(64*7 + 13)
	for i := 0; i < v.Len(); i++ {
		if r.Intn(2) == 0 {
			v.Set(i)
		}
	}
	for lo := 0; lo < v.Words(); lo++ {
		for hi := lo; hi <= v.Words(); hi++ {
			blk := v.BlockWords(lo, hi)
			if len(blk) != hi-lo {
				t.Fatalf("BlockWords(%d,%d) has %d words", lo, hi, len(blk))
			}
			for j := range blk {
				if blk[j] != v.words[lo+j] {
					t.Fatalf("BlockWords(%d,%d)[%d] mismatch", lo, hi, j)
				}
			}
		}
	}
}
