package bitvec

import (
	"fmt"
	"math/bits"
)

// Segmented kernel views. A segment is a fixed 64Ki-bit (1024-word) slice
// of a vector; the parallel execution engine partitions every bulk Boolean
// operation into per-segment word ranges so independent workers can write
// disjoint ranges of a shared destination without synchronization. All
// range kernels are bit-identical to the whole-vector operations: applying
// a kernel over every segment of a vector produces exactly the words the
// corresponding whole-vector method would.
const (
	// SegmentBits is the fixed segment size in bits. 64Ki bits = 8KiB of
	// payload per segment per vector: large enough that the fork/join
	// overhead amortizes, small enough that even mid-sized tables split
	// into more segments than cores.
	SegmentBits = 64 * 1024
	// SegmentWords is the segment size in backing 64-bit words.
	SegmentWords = SegmentBits / wordBits
)

// NumSegments returns how many SegmentBits-sized segments cover n bits
// (0 for n <= 0).
func NumSegments(n int) int {
	if n <= 0 {
		return 0
	}
	return (wordsFor(n) + SegmentWords - 1) / SegmentWords
}

// Segments returns the number of segments covering v.
func (v *Vector) Segments() int { return NumSegments(v.n) }

// SegmentSpan returns the word range [lo, hi) of segment seg. The final
// segment is clamped to the vector's word count (the tail segment may be
// short).
func (v *Vector) SegmentSpan(seg int) (lo, hi int) {
	if seg < 0 || seg >= v.Segments() {
		panic(fmt.Sprintf("bitvec: segment %d out of range [0,%d)", seg, v.Segments()))
	}
	lo = seg * SegmentWords
	hi = lo + SegmentWords
	if hi > len(v.words) {
		hi = len(v.words)
	}
	return lo, hi
}

// checkRange validates a word range against v and the other operands.
func (v *Vector) checkRange(lo, hi int, others ...*Vector) {
	if lo < 0 || hi < lo || hi > len(v.words) {
		panic(fmt.Sprintf("bitvec: word range [%d,%d) out of range [0,%d]", lo, hi, len(v.words)))
	}
	for _, o := range others {
		v.sameLen(o)
	}
}

// AndInto sets v's words [lo, hi) to a AND b over the same range. The
// operands must all share v's length; v may alias a or b (the common
// in-place form is v.AndInto(v, o, lo, hi)). Only words [lo, hi) of v are
// written, so concurrent AndInto calls over disjoint ranges are safe.
func (v *Vector) AndInto(a, b *Vector, lo, hi int) {
	v.checkRange(lo, hi, a, b)
	mSegOps.Inc()
	for i := lo; i < hi; i++ {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// OrInto sets v's words [lo, hi) to a OR b over the same range. Aliasing
// and concurrency rules match AndInto.
func (v *Vector) OrInto(a, b *Vector, lo, hi int) {
	v.checkRange(lo, hi, a, b)
	mSegOps.Inc()
	for i := lo; i < hi; i++ {
		v.words[i] = a.words[i] | b.words[i]
	}
}

// AndNotInto sets v's words [lo, hi) to a AND NOT b over the same range.
// Aliasing and concurrency rules match AndInto.
func (v *Vector) AndNotInto(a, b *Vector, lo, hi int) {
	v.checkRange(lo, hi, a, b)
	mSegOps.Inc()
	for i := lo; i < hi; i++ {
		v.words[i] = a.words[i] &^ b.words[i]
	}
}

// NotInto sets v's words [lo, hi) to NOT a over the same range,
// maintaining the all-zero tail invariant when the range includes the
// final word — so a segment-by-segment complement equals Not exactly.
func (v *Vector) NotInto(a *Vector, lo, hi int) {
	v.checkRange(lo, hi, a)
	mSegOps.Inc()
	for i := lo; i < hi; i++ {
		v.words[i] = ^a.words[i]
	}
	if hi == len(v.words) {
		v.trimTail()
	}
}

// CopyInto copies a's words [lo, hi) into v.
func (v *Vector) CopyInto(a *Vector, lo, hi int) {
	v.checkRange(lo, hi, a)
	copy(v.words[lo:hi], a.words[lo:hi])
}

// PopcountRange returns the number of set bits in words [lo, hi). Summing
// it over all segments equals Count (the tail beyond Len is always zero).
func (v *Vector) PopcountRange(lo, hi int) int {
	v.checkRange(lo, hi)
	mSegPopcounts.Inc()
	c := 0
	for _, w := range v.words[lo:hi] {
		c += bits.OnesCount64(w)
	}
	return c
}
