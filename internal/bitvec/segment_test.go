package bitvec

import (
	"math/rand"
	"testing"
)

func TestNumSegments(t *testing.T) {
	cases := []struct{ n, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {64, 1},
		{SegmentBits - 1, 1}, {SegmentBits, 1}, {SegmentBits + 1, 2},
		{3 * SegmentBits, 3}, {3*SegmentBits + 7, 4},
	}
	for _, c := range cases {
		if got := NumSegments(c.n); got != c.want {
			t.Errorf("NumSegments(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSegmentSpanCoversAllWords(t *testing.T) {
	for _, n := range []int{1, 63, 64, SegmentBits, SegmentBits + 1, 2*SegmentBits + 777} {
		v := New(n)
		prev := 0
		for s := 0; s < v.Segments(); s++ {
			lo, hi := v.SegmentSpan(s)
			if lo != prev {
				t.Fatalf("n=%d seg=%d: lo=%d, want contiguous %d", n, s, lo, prev)
			}
			if hi <= lo {
				t.Fatalf("n=%d seg=%d: empty span [%d,%d)", n, s, lo, hi)
			}
			if hi-lo > SegmentWords {
				t.Fatalf("n=%d seg=%d: span %d words > SegmentWords", n, s, hi-lo)
			}
			prev = hi
		}
		if prev != v.Words() {
			t.Fatalf("n=%d: spans cover %d words, vector has %d", n, prev, v.Words())
		}
	}
}

func TestSegmentSpanPanics(t *testing.T) {
	v := New(100)
	for _, seg := range []int{-1, 1, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SegmentSpan(%d) did not panic", seg)
				}
			}()
			v.SegmentSpan(seg)
		}()
	}
}

// applySegmented runs a range kernel over every segment of dst and
// returns dst, so kernels can be compared against whole-vector ops.
func applySegmented(dst *Vector, fn func(lo, hi int)) *Vector {
	for s := 0; s < dst.Segments(); s++ {
		lo, hi := dst.SegmentSpan(s)
		fn(lo, hi)
	}
	return dst
}

func TestSegmentKernelsMatchWholeVector(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 64, 1000, SegmentBits - 1, SegmentBits, SegmentBits + 65, 2*SegmentBits + 333} {
		a, b := randomVec(r, n), randomVec(r, n)

		checks := []struct {
			name string
			seg  func() *Vector
			want *Vector
		}{
			{"and", func() *Vector {
				d := New(n)
				return applySegmented(d, func(lo, hi int) { d.AndInto(a, b, lo, hi) })
			}, a.Clone().And(b)},
			{"or", func() *Vector {
				d := New(n)
				return applySegmented(d, func(lo, hi int) { d.OrInto(a, b, lo, hi) })
			}, a.Clone().Or(b)},
			{"andnot", func() *Vector {
				d := New(n)
				return applySegmented(d, func(lo, hi int) { d.AndNotInto(a, b, lo, hi) })
			}, a.Clone().AndNot(b)},
			{"not", func() *Vector {
				d := New(n)
				return applySegmented(d, func(lo, hi int) { d.NotInto(a, lo, hi) })
			}, a.Clone().Not()},
			{"copy", func() *Vector {
				d := New(n)
				return applySegmented(d, func(lo, hi int) { d.CopyInto(a, lo, hi) })
			}, a.Clone()},
		}
		for _, c := range checks {
			if got := c.seg(); !got.Equal(c.want) {
				t.Errorf("n=%d: segmented %s != whole-vector result", n, c.name)
			}
		}

		sum := 0
		for s := 0; s < a.Segments(); s++ {
			lo, hi := a.SegmentSpan(s)
			sum += a.PopcountRange(lo, hi)
		}
		if sum != a.Count() {
			t.Errorf("n=%d: sum of PopcountRange = %d, Count = %d", n, sum, a.Count())
		}
	}
}

func TestSegmentKernelsAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n := SegmentBits + 99
	a, b := randomVec(r, n), randomVec(r, n)

	// In-place forms: v.AndInto(v, o, ...) must equal v.And(o).
	v := a.Clone()
	applySegmented(v, func(lo, hi int) { v.AndInto(v, b, lo, hi) })
	if !v.Equal(a.Clone().And(b)) {
		t.Error("aliased AndInto diverged from And")
	}
	v = a.Clone()
	applySegmented(v, func(lo, hi int) { v.OrInto(v, b, lo, hi) })
	if !v.Equal(a.Clone().Or(b)) {
		t.Error("aliased OrInto diverged from Or")
	}
}

func TestSegmentKernelZeroLengthRange(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 2048
	a, b := randomVec(r, n), randomVec(r, n)
	d := New(n)
	want := d.Clone()
	d.AndInto(a, b, 5, 5) // no-op range
	d.OrInto(a, b, 0, 0)
	d.NotInto(a, d.Words(), d.Words())
	if !d.Equal(want) {
		t.Error("zero-length ranges modified the destination")
	}
	if got := a.PopcountRange(3, 3); got != 0 {
		t.Errorf("PopcountRange over empty range = %d, want 0", got)
	}
}

func TestSegmentKernelPanics(t *testing.T) {
	a, b := New(128), New(128)
	short := New(64)
	cases := []struct {
		name string
		fn   func()
	}{
		{"lo<0", func() { New(128).AndInto(a, b, -1, 1) }},
		{"hi<lo", func() { New(128).OrInto(a, b, 2, 1) }},
		{"hi>words", func() { New(128).AndNotInto(a, b, 0, 3) }},
		{"len mismatch", func() { New(128).AndInto(a, short, 0, 1) }},
		{"not mismatch", func() { New(128).NotInto(short, 0, 1) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

// FuzzSegmentKernels cross-checks the range kernels against whole-vector
// operations at fuzzer-chosen lengths and word ranges, exercising tail
// words, segment boundaries, and zero-length ranges.
func FuzzSegmentKernels(f *testing.F) {
	f.Add(int64(1), uint(100), uint(0), uint(2))
	f.Add(int64(2), uint(SegmentBits), uint(SegmentWords-1), uint(SegmentWords))
	f.Add(int64(3), uint(SegmentBits+65), uint(0), uint(0))
	f.Add(int64(4), uint(2*SegmentBits+7), uint(SegmentWords), uint(2*SegmentWords))
	f.Fuzz(func(t *testing.T, seed int64, n, lo, hi uint) {
		nn := int(n%(3*SegmentBits)) + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randomVec(r, nn), randomVec(r, nn)
		words := a.Words()
		l := int(lo) % (words + 1)
		h := l + int(hi)%(words-l+1)

		wantAnd := a.Clone().And(b)
		wantOr := a.Clone().Or(b)
		wantNot := a.Clone().Not()

		// Each destination starts as a copy of the whole-vector result with
		// the fuzzed range zeroed, so a correct kernel restores equality and
		// an out-of-range write breaks it.
		damage := func(w *Vector) *Vector {
			d := w.Clone()
			for i := l; i < h; i++ {
				d.words[i] = 0
			}
			return d
		}

		d := damage(wantAnd)
		d.AndInto(a, b, l, h)
		if !d.Equal(wantAnd) {
			t.Fatalf("AndInto[%d,%d) n=%d diverged", l, h, nn)
		}
		d = damage(wantOr)
		d.OrInto(a, b, l, h)
		if !d.Equal(wantOr) {
			t.Fatalf("OrInto[%d,%d) n=%d diverged", l, h, nn)
		}
		d = damage(wantNot)
		d.NotInto(a, l, h)
		// NotInto only trims when the range reaches the final word; damage
		// never sets bits, so the invariant and equality both must hold.
		if !d.Equal(wantNot) {
			t.Fatalf("NotInto[%d,%d) n=%d diverged", l, h, nn)
		}
		d = damage(a)
		d.CopyInto(a, l, h)
		if !d.Equal(a) {
			t.Fatalf("CopyInto[%d,%d) n=%d diverged", l, h, nn)
		}

		whole := 0
		for i := 0; i < a.Segments(); i++ {
			slo, shi := a.SegmentSpan(i)
			whole += a.PopcountRange(slo, shi)
		}
		if whole != a.Count() {
			t.Fatalf("segment popcount sum %d != Count %d (n=%d)", whole, a.Count(), nn)
		}
	})
}
