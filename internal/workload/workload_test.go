package workload

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

func TestGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	u := Uniform(r, 1000, 50)
	if len(u) != 1000 {
		t.Fatal("Uniform length wrong")
	}
	for _, v := range u {
		if v < 0 || v >= 50 {
			t.Fatalf("Uniform out of range: %d", v)
		}
	}
	z := Zipf(r, 5000, 100, 1.3)
	counts := make(map[int64]int)
	for _, v := range z {
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Skew: value 0 must dominate the tail.
	if counts[0] < counts[50]*2 {
		t.Errorf("Zipf skew too weak: c0=%d c50=%d", counts[0], counts[50])
	}
	// s <= 1 is clamped, not a panic.
	_ = Zipf(r, 10, 100, 0.5)
	c := Clustered(r, 2000, 100, 5)
	for _, v := range c {
		if v < 0 || v >= 100 {
			t.Fatalf("Clustered out of range: %d", v)
		}
	}
	_ = Clustered(r, 10, 100, 0) // width clamp
}

func TestBuildStarShapes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := StarConfig{Facts: 2000, Products: 100, SalesPoints: 12, Days: 365, MaxQty: 50}
	s, err := BuildStar(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema.Fact.Len() != 2000 {
		t.Fatalf("fact rows = %d", s.Schema.Fact.Len())
	}
	if len(s.Product) != 2000 || len(s.Company) != 2000 {
		t.Fatal("materialized columns wrong length")
	}
	for i := 0; i < 2000; i++ {
		if s.Product[i] < 0 || s.Product[i] >= 100 {
			t.Fatal("product id out of range")
		}
		if s.Qty[i] < 1 || s.Qty[i] > 50 {
			t.Fatal("qty out of range")
		}
		if s.Revenue[i] < 0 {
			t.Fatal("negative revenue")
		}
	}
	// Dimension attributes consistent with the dims.
	prodDim := s.Schema.Dimension("product")
	for i := 0; i < 100; i++ {
		if s.Category[i] != prodDim.Column("category").Int(int(s.Product[i])) {
			t.Fatal("materialized category mismatch")
		}
	}
	if _, err := BuildStar(r, StarConfig{}); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestFigure5Companies(t *testing.T) {
	cs := Figure5Companies()
	if len(cs) != 12 {
		t.Fatalf("12 branches expected, got %d", len(cs))
	}
	// Paper: branches 1-4 -> a, 5-6 -> b, 7-8 -> c, 9-12 -> e (primary).
	if cs[0] != "a" || cs[3] != "a" || cs[4] != "b" || cs[6] != "c" || cs[8] != "e" || cs[11] != "e" {
		t.Fatalf("membership wrong: %v", cs)
	}
}

func TestQueryMixProfile(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s, err := BuildStar(r, StarConfig{Facts: 500, Products: 100, SalesPoints: 12, Days: 365, MaxQty: 50})
	if err != nil {
		t.Fatal(err)
	}
	mix := QueryMix(r, s)
	if len(mix) != 17 {
		t.Fatalf("mix has %d types, want 17", len(mix))
	}
	ranges := 0
	for _, q := range mix {
		if q.IsRange {
			ranges++
		}
		if q.Name == "" || q.Pred == nil {
			t.Fatalf("malformed query %+v", q)
		}
	}
	if ranges != 12 {
		t.Fatalf("%d range types, TPC-D profile says 12", ranges)
	}
	// Every query must evaluate without error on a plain scan executor.
	ex := query.NewExecutor(s.Schema.Fact)
	for _, q := range mix {
		if _, _, err := ex.Eval(q.Pred); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
}
