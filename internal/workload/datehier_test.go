package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
)

func TestDateHierarchyShape(t *testing.T) {
	if _, err := DateHierarchy(0); err == nil {
		t.Fatal("zero days should error")
	}
	h, err := DateHierarchy(360) // exactly one year
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Leaves) != 360 {
		t.Fatalf("leaves = %d", len(h.Leaves))
	}
	if len(h.Levels) != 3 {
		t.Fatalf("levels = %d", len(h.Levels))
	}
	months := h.Levels[0].Members
	quarters := h.Levels[1].Members
	years := h.Levels[2].Members
	if len(months) != 12 || len(quarters) != 4 || len(years) != 1 {
		t.Fatalf("months=%d quarters=%d years=%d", len(months), len(quarters), len(years))
	}
	if len(months["m000"]) != 30 || len(quarters["q00"]) != 90 || len(years["y0"]) != 360 {
		t.Fatal("member sizes wrong")
	}
}

// Hierarchy-encoding the date dimension: month roll-ups must reduce far
// below their member counts.
func TestDateHierarchyEncodingRollups(t *testing.T) {
	h, err := DateHierarchy(120) // 4 months = q0 + month of q1
	if err != nil {
		t.Fatal(err)
	}
	// Index a day column with the hierarchy predicates as the workload.
	col := make([]int64, 5000)
	for i := range col {
		col[i] = int64(i % 120)
	}
	ix, err := core.Build(col, nil, &core.Options[int64]{
		Predicates: h.Predicates(),
		Search:     &encoding.SearchOptions{SwapBudget: 800, UseDontCares: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A month selection (30 values) must cost far less than 30 vectors.
	month := h.Levels[0].Members["m000"]
	e := ix.ExprFor(month)
	if e.AccessCost() > ix.K() {
		t.Fatalf("month roll-up cost %d > k=%d", e.AccessCost(), ix.K())
	}
	rows, st := ix.In(month)
	want := 0
	for _, v := range col {
		if v < 30 {
			want++
		}
	}
	if rows.Count() != want {
		t.Fatalf("month roll-up selected %d rows, want %d", rows.Count(), want)
	}
	if st.VectorsRead > ix.K() {
		t.Fatalf("vectors read %d > k", st.VectorsRead)
	}
	// Quarter roll-up (90 values) stays within k too.
	quarter := h.Levels[1].Members["q00"]
	if c := ix.ExprFor(quarter).AccessCost(); c > ix.K() {
		t.Fatalf("quarter cost %d > k", c)
	}
}
