package workload

import (
	"math/rand"

	"repro/internal/query"
	"repro/internal/table"
)

// MixQuery is one query type of the TPC-D-flavoured mix.
type MixQuery struct {
	Name    string
	Pred    query.Predicate
	IsRange bool // involves a range search (12 of the 17 types, per TPC-D)
}

// QueryMix instantiates the 17-type query mix over a generated star. The
// 12 range types mirror TPC-D's Q1, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10, Q12,
// Q14, Q16 in spirit (date windows, quantity/discount bands, IN-lists);
// the remaining 5 are point selections.
func QueryMix(r *rand.Rand, s *Star) []MixQuery {
	cfg := s.Config
	day := func(width int) query.Predicate {
		if width >= cfg.Days {
			width = cfg.Days - 1
		}
		lo := int64(0)
		if span := cfg.Days - width; span > 0 {
			lo = int64(r.Intn(span))
		}
		return query.Range{Col: "day", Lo: lo, Hi: lo + int64(width)}
	}
	randProducts := func(k int) []table.Cell {
		out := make([]table.Cell, k)
		for i := range out {
			out[i] = table.IntCell(int64(r.Intn(cfg.Products)))
		}
		return out
	}
	mix := []MixQuery{
		// Range-search types (12).
		{"Q1 shipped-before window", day(90), true},
		{"Q3 date window x salespoint", query.And{Preds: []query.Predicate{
			day(30),
			query.Eq{Col: "salespoint", Val: table.IntCell(int64(r.Intn(cfg.SalesPoints)))},
		}}, true},
		{"Q4 order-date quarter", day(91), true},
		{"Q5 year window x product band", query.And{Preds: []query.Predicate{
			day(365),
			query.Range{Col: "product", Lo: 0, Hi: int64(cfg.Products / 4)},
		}}, true},
		{"Q6 forecast: date x discount x qty", query.And{Preds: []query.Predicate{
			day(365),
			query.Range{Col: "discount", Lo: 4, Hi: 6},
			query.Range{Col: "qty", Lo: 1, Hi: int64(cfg.MaxQty / 2)},
		}}, true},
		{"Q7 two-quarter shipping window", day(182), true},
		{"Q8 market-share window", day(300), true},
		{"Q9 wide product band", query.Range{Col: "product", Lo: int64(cfg.Products / 2), Hi: int64(cfg.Products - 1)}, true},
		{"Q10 returned-items quarter", day(91), true},
		{"Q12 shipmode window x qty band", query.And{Preds: []query.Predicate{
			day(365),
			query.Range{Col: "qty", Lo: int64(cfg.MaxQty / 2), Hi: int64(cfg.MaxQty)},
		}}, true},
		{"Q14 promotion month", day(30), true},
		{"Q16 product IN-list", query.In{Col: "product", Vals: randProducts(32)}, true},
		// Point-selection types (5).
		{"Q2 point product", query.Eq{Col: "product", Val: table.IntCell(int64(r.Intn(cfg.Products)))}, false},
		{"Q11 point salespoint", query.Eq{Col: "salespoint", Val: table.IntCell(int64(r.Intn(cfg.SalesPoints)))}, false},
		{"Q13 point discount", query.Eq{Col: "discount", Val: table.IntCell(int64(r.Intn(11)))}, false},
		{"Q15 point qty", query.Eq{Col: "qty", Val: table.IntCell(int64(1 + r.Intn(cfg.MaxQty)))}, false},
		{"Q17 point product x salespoint", query.And{Preds: []query.Predicate{
			query.Eq{Col: "product", Val: table.IntCell(int64(r.Intn(cfg.Products)))},
			query.Eq{Col: "salespoint", Val: table.IntCell(int64(r.Intn(cfg.SalesPoints)))},
		}}, false},
	}
	return mix
}
