package workload

import (
	"fmt"

	"repro/internal/encoding"
)

// DateHierarchy builds the classic time hierarchy over a day-number
// domain [0, days): days roll up into months (30-day blocks), months
// into quarters, quarters into years — the Section 2.3 "hierarchies
// along dimensions" situation for the DATE dimension, ready for
// hierarchy encoding.
func DateHierarchy(days int) (*encoding.Hierarchy[int64], error) {
	if days < 1 {
		return nil, fmt.Errorf("workload: need at least one day")
	}
	leaves := make([]int64, days)
	for i := range leaves {
		leaves[i] = int64(i)
	}
	const (
		daysPerMonth   = 30
		monthsPerQ     = 3
		quartersPerYr  = 4
		daysPerQuarter = daysPerMonth * monthsPerQ
		daysPerYear    = daysPerQuarter * quartersPerYr
	)
	months := make(map[string][]int64)
	quarters := make(map[string][]int64)
	years := make(map[string][]int64)
	for d := 0; d < days; d++ {
		m := d / daysPerMonth
		q := d / daysPerQuarter
		y := d / daysPerYear
		mk := fmt.Sprintf("m%03d", m)
		qk := fmt.Sprintf("q%02d", q)
		yk := fmt.Sprintf("y%d", y)
		months[mk] = append(months[mk], int64(d))
		quarters[qk] = append(quarters[qk], int64(d))
		years[yk] = append(years[yk], int64(d))
	}
	return &encoding.Hierarchy[int64]{
		Leaves: leaves,
		Levels: []encoding.HierarchyLevel[int64]{
			{Name: "month", Members: months},
			{Name: "quarter", Members: quarters},
			{Name: "year", Members: years},
		},
	}, nil
}
