// Package workload generates the synthetic data and query mixes the
// benchmark harness runs. The paper's evaluation is analytical and cites
// TPC-D only for its query-type profile — 12 of 17 query types involve
// range searches — so this package provides (a) column generators with
// controllable cardinality and skew, and (b) a TPC-D-flavoured star
// schema (SALES fact with PRODUCT / SALESPOINT / DATE dimensions) plus a
// 17-type query mix preserving that 12:5 range-to-point ratio.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
)

// Uniform returns n values uniform over [0, m).
func Uniform(r *rand.Rand, n, m int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.Intn(m))
	}
	return out
}

// Zipf returns n values over [0, m) with Zipfian skew s > 1 (frequency of
// value v proportional to 1/(v+1)^s) — the high-cardinality-with-skew
// profile of Wu & Yu's range-based indexing that Section 4 discusses.
func Zipf(r *rand.Rand, n, m int, s float64) []int64 {
	if s <= 1 {
		s = 1.0001
	}
	z := rand.NewZipf(r, s, 1, uint64(m-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// Clustered returns n values over [0, m) where consecutive rows tend to
// stay in a window of the given width — modeling the co-accessed
// subdomains well-defined encodings exploit.
func Clustered(r *rand.Rand, n, m, width int) []int64 {
	if width < 1 {
		width = 1
	}
	out := make([]int64, n)
	base := r.Intn(m)
	for i := range out {
		if r.Intn(16) == 0 {
			base = r.Intn(m)
		}
		out[i] = int64((base + r.Intn(width)) % m)
	}
	return out
}

// StarConfig sizes the synthetic star schema.
type StarConfig struct {
	Facts       int // SALES rows
	Products    int // PRODUCT dimension cardinality (paper's example: 12000)
	SalesPoints int // SALESPOINT dimension cardinality
	Days        int // DATE domain (e.g. 730 for two years)
	MaxQty      int // quantity domain [1, MaxQty]
}

// DefaultStarConfig matches the shapes used in the benchmark harness.
func DefaultStarConfig() StarConfig {
	return StarConfig{Facts: 50000, Products: 1000, SalesPoints: 12, Days: 730, MaxQty: 50}
}

// Star is the generated warehouse: a SALES fact table with foreign keys
// into PRODUCT and SALESPOINT dimensions plus degenerate DATE/QTY/DISCOUNT
// attributes, and the raw columns for index builders.
type Star struct {
	Config StarConfig
	Schema *table.Star

	// Fact columns (length Facts).
	Product    []int64 // PRODUCT row ids, Zipf-skewed
	SalesPoint []int64 // SALESPOINT row ids
	Day        []int64 // 0..Days-1
	Qty        []int64 // 1..MaxQty
	Discount   []int64 // 0..10
	Revenue    []float64

	// Dimension attributes materialized along the fact table.
	Category []int64  // PRODUCT.category (25 values), per fact row
	Company  []string // SALESPOINT.company, per fact row
}

// Figure5Companies returns the paper's branch -> company assignment for a
// 12-branch SALESPOINT dimension (primary membership; the m:N extras live
// in the hierarchy-encoding predicates).
func Figure5Companies() []string {
	return []string{"a", "a", "a", "a", "b", "b", "c", "c", "e", "e", "e", "e"}
}

// BuildStar generates the warehouse.
func BuildStar(r *rand.Rand, cfg StarConfig) (*Star, error) {
	if cfg.Facts <= 0 || cfg.Products <= 0 || cfg.SalesPoints <= 0 || cfg.Days <= 0 || cfg.MaxQty <= 0 {
		return nil, fmt.Errorf("workload: invalid config %+v", cfg)
	}
	product := table.MustNew("PRODUCT",
		table.NewColumn("category", table.Int64),
		table.NewColumn("price", table.Int64),
	)
	for i := 0; i < cfg.Products; i++ {
		if err := product.AppendRow(
			table.IntCell(int64(i%25)),
			table.IntCell(int64(1+r.Intn(500))),
		); err != nil {
			return nil, err
		}
	}
	companies := Figure5Companies()
	salespoint := table.MustNew("SALESPOINT",
		table.NewColumn("company", table.String),
	)
	for i := 0; i < cfg.SalesPoints; i++ {
		if err := salespoint.AppendRow(table.StrCell(companies[i%len(companies)])); err != nil {
			return nil, err
		}
	}

	fact := table.MustNew("SALES",
		table.NewColumn("product", table.Int64),
		table.NewColumn("salespoint", table.Int64),
		table.NewColumn("day", table.Int64),
		table.NewColumn("qty", table.Int64),
		table.NewColumn("discount", table.Int64),
	)
	s := &Star{
		Config:     cfg,
		Product:    Zipf(r, cfg.Facts, cfg.Products, 1.2),
		SalesPoint: Uniform(r, cfg.Facts, cfg.SalesPoints),
		Day:        Uniform(r, cfg.Facts, cfg.Days),
		Qty:        make([]int64, cfg.Facts),
		Discount:   make([]int64, cfg.Facts),
		Revenue:    make([]float64, cfg.Facts),
		Category:   make([]int64, cfg.Facts),
		Company:    make([]string, cfg.Facts),
	}
	for i := 0; i < cfg.Facts; i++ {
		s.Qty[i] = int64(1 + r.Intn(cfg.MaxQty))
		s.Discount[i] = int64(r.Intn(11))
		price := product.Column("price").Int(int(s.Product[i]))
		s.Revenue[i] = float64(s.Qty[i]) * float64(price) * (1 - float64(s.Discount[i])/100)
		s.Category[i] = product.Column("category").Int(int(s.Product[i]))
		s.Company[i] = salespoint.Column("company").Str(int(s.SalesPoint[i]))
		if err := fact.AppendRow(
			table.IntCell(s.Product[i]),
			table.IntCell(s.SalesPoint[i]),
			table.IntCell(s.Day[i]),
			table.IntCell(s.Qty[i]),
			table.IntCell(s.Discount[i]),
		); err != nil {
			return nil, err
		}
	}
	s.Schema = table.NewStar(fact)
	if err := s.Schema.AddDimension("product", product); err != nil {
		return nil, err
	}
	if err := s.Schema.AddDimension("salespoint", salespoint); err != nil {
		return nil, err
	}
	return s, nil
}
