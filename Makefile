# Convenience targets; the module is stdlib-only, so plain go commands work.

.PHONY: all build vet test race bench bench-json bench-eval bench-obs bench-reorder fuzz experiments examples serve-demo drift-demo flight-demo audit-demo

all: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Write a versioned perf-trajectory snapshot (see docs/observability.md,
# "Bench JSON"). Compare two snapshots with:
#   go run ./cmd/ebibench compare OLD.json NEW.json
bench-json:
	go run ./cmd/ebibench -n 200000 -parallel -eval -reorder -audit -json BENCH_$$(date +%F).json

# Fused single-pass evaluation vs the multi-pass baseline (see
# docs/evaluation.md).
bench-eval:
	go run ./cmd/ebibench -n 200000 eval

# Telemetry overhead microbenchmarks plus the zero-alloc guard for the
# disabled paths (see docs/observability.md, "Resource attribution").
bench-obs:
	go test ./internal/obs/ -run TestDisabledPathZeroAllocs -bench . -benchmem

# Row-reordering pass: per-heuristic WAH ratios and streamed-eval
# latency against the unsorted baseline (see docs/sorting.md).
bench-reorder:
	go run ./cmd/ebibench -n 200000 reorder

# Short fuzz pass over every fuzz target (requires Go >= 1.18).
fuzz:
	go test -fuzz FuzzLoad -fuzztime 20s ./internal/core/
	go test -fuzz FuzzBuildQueryDelete -fuzztime 20s ./internal/core/
	go test -fuzz FuzzRoundTrip -fuzztime 15s ./internal/compress/
	go test -fuzz FuzzBinops -fuzztime 15s ./internal/compress/
	go test -fuzz FuzzMinimize -fuzztime 15s ./internal/boolmin/
	go test -fuzz FuzzRetrievalFunction -fuzztime 10s ./internal/boolmin/
	go test -fuzz FuzzFusedEval -fuzztime 20s ./internal/boolmin/
	go test -fuzz FuzzSegmentKernels -fuzztime 15s ./internal/bitvec/
	go test -fuzz FuzzSwapCatchUp -fuzztime 20s ./internal/core/
	go test -fuzz FuzzReorderPermutation -fuzztime 15s ./internal/reorder/

# Regenerate every figure/table of the paper.
experiments:
	go run ./cmd/ebibench -n 200000 all

# Build a small index and serve /metrics, /debug/pprof and /traces for
# manual inspection (see docs/observability.md).
serve-demo:
	go run ./cmd/ebicli serve -addr :8391

# Live workload profiling + encoding-drift watcher: the scripted
# two-phase demo, then the served variant with the watcher planning a
# re-encoding of the live demo workload every 5s on /debug/drift (see
# docs/observability.md, "Workload profiling & encoding drift").
drift-demo:
	go run ./cmd/ebibench -n 50000 drift
	go run ./cmd/ebicli serve -addr :8391 -drift 5s

# Flight recorder: serve the demo workload with a 1s time-series ring
# (/debug/timeseries), the drift watcher, and incident bundles armed in
# /tmp/ebi-incidents (/debug/incidents; inspect offline with
# `go run ./cmd/ebicli incidents -dir /tmp/ebi-incidents`). See
# docs/observability.md, "Flight recorder".
flight-demo:
	go run ./cmd/ebicli serve -addr :8391 -drift 5s -scrape 1s -incidents /tmp/ebi-incidents

# Audit plane: the scripted clean + fault-injection experiments (the
# fault run exits non-zero on detection — that is the expected outcome),
# then the served demo with every execution sampled into /debug/audit
# (see docs/observability.md, "Audit plane").
audit-demo:
	go run ./cmd/ebibench -n 50000 audit
	go run ./cmd/ebibench -n 50000 -fault audit; test $$? -ne 0
	go run ./cmd/ebicli serve -addr :8391 -drift 5s -apply -scrape 1s -incidents /tmp/ebi-incidents -audit 1.0

examples:
	go run ./examples/quickstart
	go run ./examples/starschema
	go run ./examples/rangescan
	go run ./examples/groupset
	go run ./examples/warehouse
	go run ./examples/olap
