package repro

// One benchmark per table/figure of the paper's evaluation, plus the
// ablations listed in DESIGN.md §5. Custom metrics report the paper's
// cost measure (bitmap vectors read) next to wall time:
//
//	BenchmarkFig9a / BenchmarkFig9b    Figure 9: range-selection cost vs δ
//	BenchmarkFig10Space                Figure 10: index size vs cardinality
//	BenchmarkBTreeSpace                Section 2.1: bitmap vs B-tree space
//	BenchmarkWorstCaseModel            Section 3.2: area-ratio computation
//	BenchmarkQueryMix*                 Section 3.2: the 12/17-range TPC-D mix
//	BenchmarkGroupSet                  Section 4: group-set aggregation
//	BenchmarkMaintenance*              Section 2.2/3.1: appends
//	BenchmarkRangeBased                Section 4: Wu-Yu buckets vs range-encoded EBI
//	BenchmarkJoinIndex                 Section 4: bitmapped join index
//	BenchmarkBaseBSlicing              Section 4: non-binary-base bit slicing
//	BenchmarkOrderedAggregates         Section 5: vector-side MIN/MAX/TopK
//	BenchmarkAggregateStrategies       decode vs bitmap-side histograms
//	BenchmarkCompressedSimpleIndex     plain vs WAH simple bitmap index
//	Benchmark*Ablation                 DESIGN.md §5 design-choice ablations

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bitvec"
	"repro/internal/boolmin"
	"repro/internal/bsi"
	"repro/internal/btree"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/joinidx"
	"repro/internal/query"
	"repro/internal/rangebm"
	"repro/internal/simplebitmap"
	"repro/internal/workload"
)

const benchRows = 100000

func uniformColumn(m int) []int64 {
	r := rand.New(rand.NewSource(42))
	return workload.Uniform(r, benchRows, m)
}

// identityEBI builds an encoded bitmap index whose mapping is the identity
// (value = code), the configuration Figure 9's best-case model assumes.
func identityEBI(b testing.TB, column []int64, m int) *core.Index[int64] {
	identity := encoding.NewMapping[int64](analysis.K(m))
	for v := 0; v < m; v++ {
		identity.MustAdd(int64(v), uint32(v))
	}
	ix, err := core.Build(column, nil, &core.Options[int64]{
		Mapping: identity, DisableVoidReserve: true, DisableDontCares: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// benchFig9 measures the simple and encoded indexes on prefix selections
// of width δ, the constructive best case of Property 3.1.
func benchFig9(b *testing.B, m int) {
	column := uniformColumn(m)
	ebi := identityEBI(b, column, m)
	simple, err := simplebitmap.Build(column, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, delta := range []int{1, 4, m / 8, m / 2, m} {
		if delta < 1 {
			continue
		}
		vals := make([]int64, delta)
		for i := range vals {
			vals[i] = int64(i)
		}
		b.Run(fmt.Sprintf("simple/delta=%d", delta), func(b *testing.B) {
			var vectors int
			for i := 0; i < b.N; i++ {
				_, st := simple.In(vals)
				vectors = st.VectorsRead
			}
			b.ReportMetric(float64(vectors), "vectors")
		})
		b.Run(fmt.Sprintf("encoded/delta=%d", delta), func(b *testing.B) {
			var vectors int
			for i := 0; i < b.N; i++ {
				_, st := ebi.In(vals)
				vectors = st.VectorsRead
			}
			b.ReportMetric(float64(vectors), "vectors")
		})
	}
}

func BenchmarkFig9a(b *testing.B) { benchFig9(b, 50) }
func BenchmarkFig9b(b *testing.B) { benchFig9(b, 1000) }

// BenchmarkFig10Space builds both indexes across cardinalities and reports
// vector counts and bytes — Figure 10's curves as metrics.
func BenchmarkFig10Space(b *testing.B) {
	for _, m := range []int{16, 256, 4096} {
		column := uniformColumn(m)
		b.Run(fmt.Sprintf("simple/m=%d", m), func(b *testing.B) {
			var bytes, vectors int
			for i := 0; i < b.N; i++ {
				ix, err := simplebitmap.Build(column, nil)
				if err != nil {
					b.Fatal(err)
				}
				bytes, vectors = ix.SizeBytes(), ix.Cardinality()
			}
			b.ReportMetric(float64(vectors), "vectors")
			b.ReportMetric(float64(bytes), "index-bytes")
		})
		b.Run(fmt.Sprintf("encoded/m=%d", m), func(b *testing.B) {
			var bytes, vectors int
			for i := 0; i < b.N; i++ {
				ix, err := core.Build(column, nil, &core.Options[int64]{DisableVoidReserve: true})
				if err != nil {
					b.Fatal(err)
				}
				bytes, vectors = ix.SizeBytes(), ix.K()
			}
			b.ReportMetric(float64(vectors), "vectors")
			b.ReportMetric(float64(bytes), "index-bytes")
		})
	}
}

// BenchmarkBTreeSpace measures the Section 2.1 space comparison around the
// m<93 crossover (p=4K, M=512).
func BenchmarkBTreeSpace(b *testing.B) {
	for _, m := range []int{50, 92, 94, 256} {
		column := uniformColumn(m)
		ucol := make([]uint64, len(column))
		for i, v := range column {
			ucol[i] = uint64(v)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var bitmapBytes, btreeBytes int
			for i := 0; i < b.N; i++ {
				sb, err := simplebitmap.Build(column, nil)
				if err != nil {
					b.Fatal(err)
				}
				bt := btree.Build(ucol, 512)
				bitmapBytes, btreeBytes = sb.SizeBytes(), bt.SizeBytes(4096)
			}
			b.ReportMetric(float64(bitmapBytes), "bitmap-bytes")
			b.ReportMetric(float64(btreeBytes), "btree-bytes")
		})
	}
}

// BenchmarkWorstCaseModel computes the Section 3.2 area ratios (0.84 and
// 0.90) from the analytic model.
func BenchmarkWorstCaseModel(b *testing.B) {
	var r50, r1000 float64
	for i := 0; i < b.N; i++ {
		r50 = analysis.AreaRatio(50)
		r1000 = analysis.AreaRatio(1000)
	}
	b.ReportMetric(r50, "ratio-A50")
	b.ReportMetric(r1000, "ratio-A1000")
}

// queryMixFixture builds the star schema and the four executor
// configurations once per benchmark.
func queryMixFixture(b *testing.B) (*workload.Star, map[string]*query.Executor, []workload.MixQuery) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	star, err := workload.BuildStar(r, workload.StarConfig{
		Facts: benchRows / 2, Products: 1000, SalesPoints: 12, Days: 730, MaxQty: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	cols := map[string][]int64{
		"product": star.Product, "salespoint": star.SalesPoint,
		"day": star.Day, "qty": star.Qty, "discount": star.Discount,
	}
	toU64 := func(xs []int64) []uint64 {
		out := make([]uint64, len(xs))
		for i, v := range xs {
			out[i] = uint64(v)
		}
		return out
	}
	execs := make(map[string]*query.Executor)

	ex := query.NewExecutor(star.Schema.Fact)
	for col, vals := range cols {
		oi, err := core.BuildOrdered(vals, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		ex.Use(col, query.OrderedEBI{Ix: oi})
	}
	execs["encoded"] = ex

	ex = query.NewExecutor(star.Schema.Fact)
	for col, vals := range cols {
		ix, err := simplebitmap.Build(vals, nil)
		if err != nil {
			b.Fatal(err)
		}
		ex.Use(col, query.SimpleInt{Ix: ix})
	}
	execs["simple"] = ex

	ex = query.NewExecutor(star.Schema.Fact)
	for col, vals := range cols {
		ex.Use(col, query.BSIAdapter{Ix: bsi.Build(toU64(vals))})
	}
	execs["bsi"] = ex

	ex = query.NewExecutor(star.Schema.Fact)
	for col, vals := range cols {
		ex.Use(col, query.BTreeAdapter{Ix: btree.Build(toU64(vals), 512), NRows: len(vals)})
	}
	execs["btree"] = ex

	return star, execs, workload.QueryMix(r, star)
}

// BenchmarkQueryMix runs the 17-type TPC-D-flavoured mix per index
// configuration.
func BenchmarkQueryMix(b *testing.B) {
	_, execs, mix := queryMixFixture(b)
	for _, name := range []string{"encoded", "simple", "bsi", "btree"} {
		ex := execs[name]
		b.Run(name, func(b *testing.B) {
			var vectors int
			for i := 0; i < b.N; i++ {
				vectors = 0
				for _, q := range mix {
					_, st, err := ex.Eval(q.Pred)
					if err != nil {
						b.Fatal(err)
					}
					vectors += st.VectorsRead
				}
			}
			b.ReportMetric(float64(vectors), "vectors/mix")
		})
	}
}

// BenchmarkGroupSet measures Section 4's dynamic group-by on encoded
// vectors.
func BenchmarkGroupSet(b *testing.B) {
	star, _, _ := queryMixFixture(b)
	catIx, err := core.Build(star.Category, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	spIx, err := core.Build(star.SalesPoint, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.NewGroupSet(catIx, spIx)
	if err != nil {
		b.Fatal(err)
	}
	all, _ := catIx.Existing()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.GroupSum(all, star.Revenue); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumVectors()), "vectors")
}

// BenchmarkMaintenanceAppend compares per-tuple append cost, simple vs
// encoded, across cardinalities (Section 3.1's O(h) with h=m vs h=log m).
func BenchmarkMaintenanceAppend(b *testing.B) {
	for _, m := range []int{256, 4096} {
		column := uniformColumn(m)
		b.Run(fmt.Sprintf("simple/m=%d", m), func(b *testing.B) {
			ix, err := simplebitmap.Build(column, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Append(int64(i % m))
			}
		})
		b.Run(fmt.Sprintf("encoded/m=%d", m), func(b *testing.B) {
			ix, err := core.Build(column, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ix.Append(int64(i % m)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkReductionAblation: logical reduction ON vs evaluating the raw
// sum of min-terms.
func BenchmarkReductionAblation(b *testing.B) {
	m := 256
	column := uniformColumn(m)
	ebi := identityEBI(b, column, m)
	delta := 64
	vals := make([]int64, delta)
	codes := make([]uint32, delta)
	for i := range vals {
		vals[i] = int64(i)
		codes[i] = uint32(i)
	}
	vecs := make([]*bitvec.Vector, ebi.K())
	for i := range vecs {
		vecs[i] = ebi.Vector(i)
	}
	b.Run("reduced", func(b *testing.B) {
		var vectors int
		for i := 0; i < b.N; i++ {
			_, st := ebi.In(vals)
			vectors = st.VectorsRead
		}
		b.ReportMetric(float64(vectors), "vectors")
	})
	b.Run("raw-minterms", func(b *testing.B) {
		raw := boolmin.FromMinterms(ebi.K(), codes)
		var vectors int
		for i := 0; i < b.N; i++ {
			res := boolmin.EvalVectors(raw, vecs)
			vectors = res.VectorsRead
		}
		b.ReportMetric(float64(vectors), "vectors")
	})
}

// BenchmarkEncodingAblation: workload-aware (well-defined) encoding vs the
// trivial sequential one, on scattered co-access predicates (value groups
// that are NOT contiguous, so the trivial encoding cannot exploit them).
func BenchmarkEncodingAblation(b *testing.B) {
	m := 32
	var values []int64
	for i := 0; i < m; i++ {
		values = append(values, int64(i))
	}
	perm := rand.New(rand.NewSource(4)).Perm(m)
	var preds [][]int64
	for blk := 0; blk < 4; blk++ {
		var p []int64
		for i := 0; i < 8; i++ {
			p = append(p, int64(perm[blk*8+i]))
		}
		preds = append(preds, p)
	}
	column := uniformColumn(m)
	optimized, err := core.Build(column, nil, &core.Options[int64]{Predicates: preds})
	if err != nil {
		b.Fatal(err)
	}
	trivial, err := core.Build(column, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	for name, ix := range map[string]*core.Index[int64]{"well-defined": optimized, "trivial": trivial} {
		b.Run(name, func(b *testing.B) {
			var vectors int
			for i := 0; i < b.N; i++ {
				vectors = 0
				for _, p := range preds {
					_, st := ix.In(p)
					vectors += st.VectorsRead
				}
			}
			b.ReportMetric(float64(vectors), "vectors/4preds")
		})
	}
}

// BenchmarkVoidZeroAblation: Theorem 2.1's void-zero convention vs a
// simple bitmap index that must AND its existence vector after deletes.
func BenchmarkVoidZeroAblation(b *testing.B) {
	m := 64
	column := uniformColumn(m)
	ebi, err := core.Build(column, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	simple, err := simplebitmap.Build(column, nil)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < benchRows/20; i++ {
		row := r.Intn(benchRows)
		if err := ebi.Delete(row); err != nil {
			b.Fatal(err)
		}
		if err := simple.Delete(row); err != nil {
			b.Fatal(err)
		}
	}
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	b.Run("encoded-void0", func(b *testing.B) {
		var vectors int
		for i := 0; i < b.N; i++ {
			_, st := ebi.In(vals)
			vectors = st.VectorsRead
		}
		b.ReportMetric(float64(vectors), "vectors")
	})
	b.Run("simple-existence-mask", func(b *testing.B) {
		var vectors int
		for i := 0; i < b.N; i++ {
			rows, st := simple.In(vals)
			_, st2 := simple.Existing(rows)
			vectors = st.VectorsRead + st2.VectorsRead
		}
		b.ReportMetric(float64(vectors), "vectors")
	})
}

// BenchmarkCompressionAblation: WAH vs plain vector ANDs at the sparsity
// profiles of the two index kinds.
func BenchmarkCompressionAblation(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	n := 1 << 20
	mk := func(density float64) *bitvec.Vector {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			if r.Float64() < density {
				v.Set(i)
			}
		}
		return v
	}
	sparseA, sparseB := mk(0.001), mk(0.001) // simple-bitmap profile m=1000
	denseA, denseB := mk(0.5), mk(0.5)       // encoded profile
	cSparseA, cSparseB := compress.Compress(sparseA), compress.Compress(sparseB)
	cDenseA, cDenseB := compress.Compress(denseA), compress.Compress(denseB)
	b.Run("sparse/plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bitvec.And(sparseA, sparseB)
		}
	})
	b.Run("sparse/wah", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.And(cSparseA, cSparseB)
		}
		b.ReportMetric(cSparseA.CompressionRatio(), "ratio")
	})
	b.Run("dense/plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bitvec.And(denseA, denseB)
		}
	})
	b.Run("dense/wah", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.And(cDenseA, cDenseB)
		}
		b.ReportMetric(cDenseA.CompressionRatio(), "ratio")
	})
}

// BenchmarkDontCareAblation: footnote 3's don't-care exploitation on vs
// off. With the identity mapping over m=40 (k=6, codes 40..63 free), the
// selection [32,40) plus the free codes completes the half-space B5, so
// the reduction drops from 3 vectors to 1.
func BenchmarkDontCareAblation(b *testing.B) {
	m := 40 // k=6 leaves 24 unassigned codes
	column := uniformColumn(m)
	identity := encoding.NewMapping[int64](analysis.K(m))
	for v := 0; v < m; v++ {
		identity.MustAdd(int64(v), uint32(v))
	}
	withDC, err := core.Build(column, nil, &core.Options[int64]{
		Mapping: identity, DisableVoidReserve: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	withoutDC, err := core.Build(column, nil, &core.Options[int64]{
		Mapping: identity, DisableVoidReserve: true, DisableDontCares: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]int64, 8)
	for i := range vals {
		vals[i] = int64(32 + i)
	}
	for name, ix := range map[string]*core.Index[int64]{"dontcares-on": withDC, "dontcares-off": withoutDC} {
		b.Run(name, func(b *testing.B) {
			var vectors int
			for i := 0; i < b.N; i++ {
				_, st := ix.In(vals)
				vectors = st.VectorsRead
			}
			b.ReportMetric(float64(vectors), "vectors")
		})
	}
}

// BenchmarkAggregateStrategies compares the two histogram evaluation
// paths: row decoding vs bitmap-side retrieval functions, at low and high
// selectivity.
func BenchmarkAggregateStrategies(b *testing.B) {
	m := 32
	column := uniformColumn(m)
	ix, err := core.Build(column, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	small, _ := ix.In([]int64{1})    // ~3% of rows
	large, _ := ix.NotIn([]int64{1}) // ~97% of rows
	b.Run("decode/small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Histogram(small)
		}
	})
	b.Run("vectors/small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.HistogramVectors(small)
		}
	})
	b.Run("decode/large", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Histogram(large)
		}
	})
	b.Run("vectors/large", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.HistogramVectors(large)
		}
	})
}

// BenchmarkJoinIndex measures a star-join selection through the bitmapped
// join index against a denormalized-attribute EBI.
func BenchmarkJoinIndex(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	star, err := workload.BuildStar(r, workload.StarConfig{
		Facts: benchRows / 2, Products: 1000, SalesPoints: 12, Days: 730, MaxQty: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	ji, err := joinidx.Build(star.Schema, "product")
	if err != nil {
		b.Fatal(err)
	}
	denorm, err := core.Build(star.Category, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("joinidx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ji.SelectDimEqInt("category", 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("denormalized-ebi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			denorm.Eq(7)
		}
	})
}

// BenchmarkBaseBSlicing contrasts the non-binary-base bit-sliced index
// with the binary one: equality favors larger bases, space favors base 2.
func BenchmarkBaseBSlicing(b *testing.B) {
	column := uniformColumn(1000)
	ucol := make([]uint64, len(column))
	for i, v := range column {
		ucol[i] = uint64(v)
	}
	binary := bsi.Build(ucol)
	base10 := bsi.BuildBaseB(ucol, 10)
	b.Run("eq/binary", func(b *testing.B) {
		var vectors int
		for i := 0; i < b.N; i++ {
			_, st := binary.Eq(123)
			vectors = st.VectorsRead
		}
		b.ReportMetric(float64(vectors), "vectors")
	})
	b.Run("eq/base10", func(b *testing.B) {
		var vectors int
		for i := 0; i < b.N; i++ {
			_, st := base10.Eq(123)
			vectors = st.VectorsRead
		}
		b.ReportMetric(float64(vectors), "vectors")
	})
	b.Run("range/binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			binary.Range(100, 600)
		}
		b.ReportMetric(float64(binary.SizeBytes()), "index-bytes")
	})
	b.Run("range/base10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base10.Range(100, 600)
		}
		b.ReportMetric(float64(base10.SizeBytes()), "index-bytes")
	})
}

// BenchmarkCompressedSimpleIndex measures the WAH-compressed simple
// bitmap index against the plain one on a sparse high-cardinality column.
func BenchmarkCompressedSimpleIndex(b *testing.B) {
	m := 2000
	column := uniformColumn(m)
	plain, err := simplebitmap.Build(column, nil)
	if err != nil {
		b.Fatal(err)
	}
	comp, err := simplebitmap.BuildCompressed(column, nil)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]int64, 50)
	for i := range vals {
		vals[i] = int64(i)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain.In(vals)
		}
		b.ReportMetric(float64(plain.SizeBytes()), "index-bytes")
	})
	b.Run("wah", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp.In(vals)
		}
		b.ReportMetric(float64(comp.SizeBytes()), "index-bytes")
	})
}

// BenchmarkRangeBased contrasts Section 4's two range-based designs:
// Wu & Yu equal-population buckets vs the paper's range-encoded EBI, on
// skewed data with predefined selections.
func BenchmarkRangeBased(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	column := workload.Zipf(r, benchRows/2, 10000, 1.3)
	preds := []encoding.Interval{{Lo: 0, Hi: 10}, {Lo: 10, Hi: 100}, {Lo: 100, Hi: 1000}, {Lo: 1000, Hi: 10000}}
	ebi, err := core.BuildRangeIndex(column, 0, 10000, preds, nil)
	if err != nil {
		b.Fatal(err)
	}
	wy, err := rangebm.Build(column, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("range-encoded-ebi", func(b *testing.B) {
		var vectors int
		for i := 0; i < b.N; i++ {
			vectors = 0
			for _, p := range preds {
				_, _, st := ebi.Select(p.Lo, p.Hi)
				vectors += st.VectorsRead
			}
		}
		b.ReportMetric(float64(vectors), "vectors/4preds")
	})
	b.Run("wu-yu-buckets", func(b *testing.B) {
		var vectors int
		for i := 0; i < b.N; i++ {
			vectors = 0
			for _, p := range preds {
				_, _, st := wy.Select(p.Lo, p.Hi)
				vectors += st.VectorsRead
			}
		}
		b.ReportMetric(float64(vectors), "vectors/4preds")
	})
}

// BenchmarkOrderedAggregates measures vector-side MIN/MAX/TopK on the
// ordered encoded bitmap index against a scan.
func BenchmarkOrderedAggregates(b *testing.B) {
	column := uniformColumn(1000)
	oi, err := core.BuildOrdered(column, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	sel, _ := oi.Range(100, 900)
	b.Run("max/vectors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oi.Max(sel)
		}
	})
	b.Run("max/scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			max := int64(-1)
			sel.ForEach(func(row int) bool {
				if column[row] > max {
					max = column[row]
				}
				return true
			})
			_ = max
		}
	})
	b.Run("top5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oi.TopK(sel, 5)
		}
	})
}
