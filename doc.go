// Package repro is a from-scratch Go reproduction of Ming-Chuan Wu and
// Alejandro P. Buchmann, "Encoded Bitmap Indexing for Data Warehouses"
// (ICDE 1998).
//
// The library lives under internal/: internal/core implements the encoded
// bitmap index (the paper's contribution) on top of the substrates
// internal/bitvec, internal/boolmin (Quine–McCluskey logical reduction),
// and internal/encoding (well-defined encodings, chains, hierarchy /
// total-order / range-based variants); internal/simplebitmap,
// internal/bsi, internal/btree and internal/projidx are the baselines the
// paper compares against. See README.md, DESIGN.md and EXPERIMENTS.md.
//
// bench_test.go in this directory holds one benchmark per table and
// figure of the paper's evaluation plus ablations; cmd/ebibench prints
// the same results as text tables.
package repro
