// Quickstart: build an encoded bitmap index over a column, run point and
// IN-list selections, and watch the cost stay logarithmic in the domain
// cardinality.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
)

func main() {
	// A fact-table column: 200,000 sales rows referencing 12,000 products
	// (the paper's motivating PRODUCTS example).
	r := rand.New(rand.NewSource(1))
	column := make([]int64, 200000)
	for i := range column {
		column[i] = int64(r.Intn(12000))
	}

	// Build with defaults: code 0 reserved for deleted tuples
	// (Theorem 2.1), unassigned codes used as don't-cares in logical
	// reduction.
	ix, err := core.Build(column, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d rows over %d distinct products\n", ix.Len(), ix.Cardinality())
	fmt.Printf("bitmap vectors: %d (a simple bitmap index would need %d)\n", ix.K(), ix.Cardinality())
	fmt.Printf("index size: %.1f MB (simple: ~%.1f MB)\n\n",
		float64(ix.SizeBytes())/(1<<20),
		float64(ix.Len())*float64(ix.Cardinality())/8/(1<<20))

	// Point selection: evaluates the value's retrieval Boolean function.
	rows, st := ix.Eq(4711)
	fmt.Printf("product = 4711: %d rows, %d vectors read\n", rows.Count(), st.VectorsRead)

	// IN-list selection of width 256: the retrieval expression is
	// minimized first, so the cost is bounded by k = 14 vectors — a
	// simple bitmap index would read 256.
	var list []int64
	for v := int64(4000); v < 4256; v++ {
		list = append(list, v)
	}
	rows, st = ix.In(list)
	fmt.Printf("product IN [4000,4256): %d rows, %d vectors read (simple index: %d)\n",
		rows.Count(), st.VectorsRead, len(list))

	// Deletion voids the tuple (code 0); no existence mask is ever ANDed.
	before := rows.Count()
	target := rows.NextSet(0)
	if err := ix.Delete(target); err != nil {
		log.Fatal(err)
	}
	rows, _ = ix.In(list)
	fmt.Printf("after deleting row %d: %d -> %d rows, no existence vector needed (Theorem 2.1)\n",
		target, before, rows.Count())

	// Aggregates evaluate directly on the index.
	sum := core.Sum(ix, rows, func(v int64) float64 { return float64(v) })
	med, _ := core.Median(ix, rows, func(a, b int64) bool { return a < b })
	fmt.Printf("sum(product) over selection = %.0f, median = %d\n", sum, med)
}
