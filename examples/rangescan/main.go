// Range selections three ways (Section 2.3): a total-order preserving
// encoded bitmap index answering ad-hoc ranges with MSB-first comparison
// passes, a range-based encoded bitmap index over predefined selections
// (Figures 7/8), and the IN-list rewriting with logical reduction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/encoding"
)

func main() {
	r := rand.New(rand.NewSource(3))

	// --- Total-order preserving encoding over order amounts 0..999.
	amounts := make([]int64, 150000)
	for i := range amounts {
		amounts[i] = int64(r.Intn(1000))
	}
	oi, err := core.BuildOrdered(amounts, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ordered index: %d rows, cardinality 1000, %d vectors\n", oi.Len(), oi.K())
	for _, q := range [][2]int64{{100, 199}, {0, 499}, {900, 999}} {
		rows, st := oi.Range(q[0], q[1])
		fmt.Printf("  amount in [%d,%d]: %d rows, %d vector reads (simple bitmap: %d)\n",
			q[0], q[1], rows.Count(), st.VectorsRead, q[1]-q[0]+1)
	}

	// The same range via IN-list rewriting + logical reduction.
	rows, st := oi.RangeViaReduction(0, 499)
	fmt.Printf("  [0,499] via reduction: %d rows, %d vector reads\n\n", rows.Count(), st.VectorsRead)

	// --- Figure 6: optimize an order-preserving encoding for a favored
	// subdomain.
	series := []int64{101, 102, 103, 104, 105, 106}
	column := make([]int64, 6000)
	for i := range column {
		column[i] = series[r.Intn(len(series))]
	}
	favored := []int64{101, 102, 104, 105}
	opt, err := core.BuildOrdered(column, [][]int64{favored}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figure 6: favored IN{101,102,104,105} reduces to %s (%d vector)\n\n",
		opt.Index().DescribeSelection(favored), opt.Index().ExprFor(favored).AccessCost())

	// --- Figures 7/8: range-based encoding from predefined selections.
	preds := []encoding.Interval{{Lo: 6, Hi: 10}, {Lo: 8, Hi: 12}, {Lo: 10, Hi: 13}, {Lo: 16, Hi: 20}}
	values := make([]int64, 80000)
	for i := range values {
		values[i] = 6 + int64(r.Intn(14))
	}
	ri, err := core.BuildRangeIndex(values, 6, 20, preds, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range-based index: partitions %v, %d vectors\n", ri.Partitions(), ri.K())
	for _, p := range preds {
		rows, exact, st := ri.Select(p.Lo, p.Hi)
		fmt.Printf("  %d <= A < %d: %s -> %d rows (exact=%v, %d vector reads)\n",
			p.Lo, p.Hi, ri.DescribeSelection(p.Lo, p.Hi), rows.Count(), exact, st.VectorsRead)
	}
	rows2, exact, _ := ri.Select(7, 11)
	fmt.Printf("  ad-hoc 7 <= A < 11: %d candidate rows (exact=%v; boundary partitions need post-filtering)\n",
		rows2.Count(), exact)
}
