// Group-set indexing (Section 4): Group-By over several attributes using
// the concatenation of encoded bitmap codes as the group key. Where a
// simple-bitmap group-set index needs one vector per value combination
// (10^7 in the paper's example), the encoded version needs only the sum
// of the per-attribute code widths.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(11))
	star, err := workload.BuildStar(r, workload.StarConfig{
		Facts: 120000, Products: 1000, SalesPoints: 12, Days: 730, MaxQty: 50,
	})
	if err != nil {
		log.Fatal(err)
	}

	catIx, err := core.Build(star.Category, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	spIx, err := core.Build(star.SalesPoint, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	discIx, err := core.Build(star.Discount, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	g, err := core.NewGroupSet(catIx, spIx, discIx)
	if err != nil {
		log.Fatal(err)
	}
	combos := catIx.Cardinality() * spIx.Cardinality() * discIx.Cardinality()
	fmt.Printf("GROUP BY category, salespoint, discount over %d rows\n", g.Len())
	fmt.Printf("simple-bitmap group-set index would need %d vectors; encoded needs %d\n\n",
		combos, g.NumVectors())

	// Aggregate revenue per group over a date-restricted selection.
	dayIx, err := core.BuildOrdered(star.Day, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	sel, st := dayIx.Range(0, 89) // first quarter
	fmt.Printf("selection day in [0,90): %d rows via %d vector reads\n", sel.Count(), st.VectorsRead)

	sums, err := g.GroupSum(sel, star.Revenue)
	if err != nil {
		log.Fatal(err)
	}
	counts := g.GroupCounts(sel)

	type row struct {
		key uint64
		sum float64
	}
	top := make([]row, 0, len(sums))
	for k, s := range sums {
		top = append(top, row{k, s})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].sum > top[j].sum })
	fmt.Printf("%d non-empty groups; top 5 by revenue:\n", len(top))
	for _, t := range top[:5] {
		parts := g.SplitKey(t.key)
		cat, _ := catIx.Mapping().ValueOf(parts[0])
		sp, _ := spIx.Mapping().ValueOf(parts[1])
		disc, _ := discIx.Mapping().ValueOf(parts[2])
		fmt.Printf("  category=%2d salespoint=%2d discount=%2d%%: revenue %12.2f (%d rows)\n",
			cat, sp, disc, t.sum, counts[t.key])
	}
}
