// OLAP roll-ups and drill-downs (Section 2.3): a revenue cube over the
// star schema, aggregated dynamically from encoded bitmap vectors — no
// precomputed summaries. Roll up by company, drill down into categories,
// all restricted to the first quarter via the date index.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(31))
	star, err := workload.BuildStar(r, workload.StarConfig{
		Facts: 150000, Products: 500, SalesPoints: 12, Days: 360, MaxQty: 50,
	})
	if err != nil {
		log.Fatal(err)
	}

	companyIx, err := core.Build(star.Company, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	categoryIx, err := core.Build(star.Category, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cube.New(star.Revenue,
		cube.Dimension{Name: "company", Column: companyIx, Label: cube.LabelFor(companyIx)},
		cube.Dimension{Name: "category", Column: categoryIx, Label: cube.LabelFor(categoryIx)},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Restrict to Q1 through the ordered date index.
	dayIx, err := core.BuildOrdered(star.Day, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	q1, st := dayIx.Range(0, 89)
	fmt.Printf("Q1 selection: %d of %d rows via %d vector reads\n\n", q1.Count(), len(star.Day), st.VectorsRead)

	count, total := c.Total(q1)
	fmt.Printf("Q1 apex: %d rows, revenue %.0f\n\n", count, total)

	byCompany, err := c.RollUp(q1, "company")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("roll-up by company:")
	for _, cell := range byCompany {
		fmt.Printf("  company %-2s revenue %12.0f (%d rows)\n", cell.Labels[0], cell.Sum, cell.Count)
	}

	top := byCompany[0].Labels[0]
	fmt.Printf("\ndrill-down into company %s by category (top 5):\n", top)
	detail, err := c.RollUp(q1, "company", "category")
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, cell := range detail {
		if cell.Labels[0] != top {
			continue
		}
		fmt.Printf("  category %-3s revenue %12.0f (%d rows)\n", cell.Labels[1], cell.Sum, cell.Count)
		shown++
		if shown == 5 {
			break
		}
	}
}
