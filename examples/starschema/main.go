// Star schema + hierarchy encoding: the paper's Section 2.3 SALESPOINT
// example. Twelve branches roll up into five companies and three
// alliances with m:N memberships; a hierarchy-encoded bitmap index over
// the fact table's salespoint column answers roll-up selections like
// "alliance = X" with very few bitmap vectors.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/query"
	"repro/internal/table"
)

func main() {
	// The paper's Figure 5 memberships (m:N: branches 3,4 belong to both
	// company a and company d; company c joins alliances X and Y).
	companies := map[string][]int64{
		"a": {1, 2, 3, 4},
		"b": {5, 6},
		"c": {7, 8},
		"d": {3, 4, 9, 10},
		"e": {9, 10, 11, 12},
	}
	alliancesOverCompanies := map[string][]string{
		"X": {"a", "b", "c"},
		"Y": {"c", "d"},
		"Z": {"d", "e"},
	}
	alliances, err := encoding.ExpandLevel(alliancesOverCompanies, companies)
	if err != nil {
		log.Fatal(err)
	}
	h := &encoding.Hierarchy[int64]{
		Leaves: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		Levels: []encoding.HierarchyLevel[int64]{
			{Name: "company", Members: companies},
			{Name: "alliance", Members: alliances},
		},
	}

	// A SALES fact table of 100k rows hitting random branches.
	r := rand.New(rand.NewSource(7))
	fact := table.MustNew("SALES",
		table.NewColumn("branch", table.Int64),
		table.NewColumn("amount", table.Int64),
	)
	branch := make([]int64, 100000)
	for i := range branch {
		branch[i] = h.Leaves[r.Intn(len(h.Leaves))]
		if err := fact.AppendRow(table.IntCell(branch[i]), table.IntCell(int64(1+r.Intn(100)))); err != nil {
			log.Fatal(err)
		}
	}
	// Build the index with the hierarchy's member sets as the expected
	// workload: the index searches for a hierarchy encoding itself
	// (keeping code 0 reserved for deleted tuples).
	ix, err := core.Build(branch, nil, &core.Options[int64]{
		Predicates: h.Predicates(),
		Search:     &encoding.SearchOptions{SwapBudget: 1500, UseDontCares: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hierarchy-encoded mapping of the 12 branches:")
	fmt.Print(ix.Mapping().String())
	fmt.Printf("\nindexed %d fact rows with %d bitmap vectors\n\n", ix.Len(), ix.K())

	// Roll-up selections along the hierarchy.
	for _, sel := range []struct {
		label   string
		members []int64
	}{
		{"company = a", companies["a"]},
		{"alliance = X", alliances["X"]},
		{"alliance = Z", alliances["Z"]},
	} {
		expr := ix.DescribeSelection(sel.members)
		rows, st := ix.In(sel.members)
		fmt.Printf("%-14s -> %-22s %7d rows, %d vectors read (simple index: %d)\n",
			sel.label, expr, rows.Count(), st.VectorsRead, len(sel.members))
	}

	// Cooperativity: combine the roll-up with a measure predicate through
	// the executor.
	ex := query.NewExecutor(fact)
	ex.Use("branch", query.EBIInt{Ix: ix})
	allianceX := make([]table.Cell, len(alliances["X"]))
	for i, b := range alliances["X"] {
		allianceX[i] = table.IntCell(b)
	}
	rows, st, err := ex.Eval(query.And{Preds: []query.Predicate{
		query.In{Col: "branch", Vals: allianceX},
		query.Range{Col: "amount", Lo: 90, Hi: 100},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalliance X AND amount in [90,100]: %d rows (%d vectors + one measure scan)\n",
		rows.Count(), st.VectorsRead)
}
