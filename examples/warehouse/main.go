// A small end-to-end warehouse session: build a star schema, index it
// (encoded bitmap + bitmapped join index), answer a star join, adapt the
// encoding to the observed query history (the paper's future-work items 3
// and 4), and persist the index to disk for the next session.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/joinidx"
	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(23))
	star, err := workload.BuildStar(r, workload.StarConfig{
		Facts: 80000, Products: 500, SalesPoints: 12, Days: 365, MaxQty: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warehouse: SALES %d rows, PRODUCT %d rows\n\n", star.Schema.Fact.Len(), 500)

	// --- Index the fact table.
	catIx, err := core.Build(star.Category, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	ji, err := joinidx.Build(star.Schema, "product")
	if err != nil {
		log.Fatal(err)
	}
	ex := query.NewExecutor(star.Schema.Fact)
	ex.Use("product.category", joinidx.Adapter{JI: ji, DimColumn: "category"})

	// --- A star join through the bitmapped join index.
	rows, st, err := ex.Eval(query.And{Preds: []query.Predicate{
		query.Eq{Col: "product.category", Val: table.IntCell(4)},
		query.Range{Col: "qty", Lo: 25, Hi: 50},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("star join (dim category=4 AND fact qty>=25): %d rows, %d bitmap vectors\n\n",
		rows.Count(), st.VectorsRead)

	// --- The query log shows two hot category groups; adapt the encoding.
	hotA := []int64{1, 9, 17, 3}
	hotB := []int64{2, 10, 18, 6}
	var history []encoding.WorkloadEntry[int64]
	for i := 0; i < 40; i++ {
		history = append(history, encoding.WorkloadEntry[int64]{Values: hotA})
	}
	for i := 0; i < 25; i++ {
		history = append(history, encoding.WorkloadEntry[int64]{Values: hotB})
	}
	mined := encoding.MineWorkload(history, 3)
	preds, weights := encoding.PredicatesOf(mined)
	applied, plan, err := catIx.OptimizeFor(preds, weights, 1<<20, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-encoding for the mined workload: cost %d -> %d, applied=%v (break-even %d evals)\n\n",
		plan.CurrentCost, plan.NewCost, applied, plan.BreakEvenEvaluations())

	// --- Persist the adapted index and reload it.
	var file bytes.Buffer // stands in for a file on disk
	if err := core.Save(&file, catIx, core.Int64Codec{}); err != nil {
		log.Fatal(err)
	}
	loaded, err := core.Load[int64](bytes.NewReader(file.Bytes()), core.Int64Codec{})
	if err != nil {
		log.Fatal(err)
	}
	before, _ := catIx.In(hotA)
	after, stLoaded := loaded.In(hotA)
	fmt.Printf("persisted %d bytes; reloaded index answers the hot query identically: %v (%d rows, %d vectors)\n",
		file.Len(), before.Equal(after), after.Count(), stLoaded.VectorsRead)
}
